// Wire-protocol unit tests (net/protocol.h): encode/decode round trips
// for every opcode, framing extraction, and the malformed-input paths
// the server's typed error replies depend on.

#include "net/protocol.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace simdtree::net {
namespace {

// Strips the length prefix of the only frame in `buf` and decodes the
// payload as a request.
DecodeResult DecodeOnly(const std::vector<uint8_t>& buf, Request* req) {
  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  EXPECT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload,
                         &payload_len, &consumed),
            1);
  EXPECT_EQ(consumed, buf.size());
  return DecodeRequest(payload, payload_len, req);
}

TEST(NetProtocolTest, GetRoundTrip) {
  std::vector<uint8_t> buf;
  AppendGet(&buf, 7, 0xDEADBEEFCAFE0123ULL);
  Request req;
  ASSERT_EQ(DecodeOnly(buf, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpGet);
  EXPECT_EQ(req.request_id, 7u);
  EXPECT_EQ(req.key, 0xDEADBEEFCAFE0123ULL);
}

TEST(NetProtocolTest, PutRoundTrip) {
  std::vector<uint8_t> buf;
  AppendPut(&buf, 42, 11, 22);
  Request req;
  ASSERT_EQ(DecodeOnly(buf, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpPut);
  EXPECT_EQ(req.request_id, 42u);
  EXPECT_EQ(req.key, 11u);
  EXPECT_EQ(req.value, 22u);
}

TEST(NetProtocolTest, DelAndLowerBoundRoundTrip) {
  std::vector<uint8_t> buf;
  AppendDel(&buf, 1, 99);
  AppendLowerBound(&buf, 2, 100);

  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  Request req;
  ASSERT_EQ(DecodeRequest(payload, payload_len, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpDel);
  EXPECT_EQ(req.key, 99u);

  size_t off = consumed;
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), off, &payload,
                         &payload_len, &consumed),
            1);
  ASSERT_EQ(DecodeRequest(payload, payload_len, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpLowerBound);
  EXPECT_EQ(req.request_id, 2u);
  EXPECT_EQ(req.key, 100u);
  EXPECT_EQ(off + consumed, buf.size());
}

TEST(NetProtocolTest, MgetRoundTrip) {
  const uint64_t keys[3] = {5, ~0ULL, 0};
  std::vector<uint8_t> buf;
  AppendMget(&buf, 9, keys, 3);
  Request req;
  ASSERT_EQ(DecodeOnly(buf, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpMget);
  ASSERT_EQ(req.keys.size(), 3u);
  EXPECT_EQ(req.keys[0], 5u);
  EXPECT_EQ(req.keys[1], ~0ULL);
  EXPECT_EQ(req.keys[2], 0u);
}

TEST(NetProtocolTest, StatsRoundTrip) {
  std::vector<uint8_t> buf;
  AppendStats(&buf, 3);
  Request req;
  ASSERT_EQ(DecodeOnly(buf, &req), DecodeResult::kOk);
  EXPECT_EQ(req.opcode, kOpStats);
  EXPECT_EQ(req.request_id, 3u);
}

TEST(NetProtocolTest, ResponseRoundTrips) {
  // GET hit.
  std::vector<uint8_t> buf;
  AppendResponseFrame(&buf, kOpGet, kStatusOk, 4, 9,
                      [](std::vector<uint8_t>* o) {
                        PutU8(o, 1);
                        PutU64(o, 777);
                      });
  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  Response resp;
  ASSERT_TRUE(DecodeResponse(payload, payload_len, &resp));
  EXPECT_EQ(resp.opcode, kOpGet);
  EXPECT_EQ(resp.status, kStatusOk);
  EXPECT_EQ(resp.request_id, 4u);
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.value, 777u);

  // GET miss: 1-byte body.
  buf.clear();
  AppendResponseFrame(&buf, kOpGet, kStatusOk, 5, 1,
                      [](std::vector<uint8_t>* o) { PutU8(o, 0); });
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  ASSERT_TRUE(DecodeResponse(payload, payload_len, &resp));
  EXPECT_FALSE(resp.found);

  // LOWER_BOUND hit carries key and value.
  buf.clear();
  AppendResponseFrame(&buf, kOpLowerBound, kStatusOk, 6, 17,
                      [](std::vector<uint8_t>* o) {
                        PutU8(o, 1);
                        PutU64(o, 123);
                        PutU64(o, 456);
                      });
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  ASSERT_TRUE(DecodeResponse(payload, payload_len, &resp));
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.key, 123u);
  EXPECT_EQ(resp.value, 456u);

  // MGET: fixed 9-byte entries, absent keys as found=0.
  buf.clear();
  AppendResponseFrame(&buf, kOpMget, kStatusOk, 7, 4 + 2 * 9,
                      [](std::vector<uint8_t>* o) {
                        PutU32(o, 2);
                        PutU8(o, 1);
                        PutU64(o, 10);
                        PutU8(o, 0);
                        PutU64(o, 0);
                      });
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  ASSERT_TRUE(DecodeResponse(payload, payload_len, &resp));
  ASSERT_EQ(resp.entries.size(), 2u);
  EXPECT_TRUE(resp.entries[0].found);
  EXPECT_EQ(resp.entries[0].value, 10u);
  EXPECT_FALSE(resp.entries[1].found);
}

TEST(NetProtocolTest, ErrorResponseEchoesRequestId) {
  std::vector<uint8_t> buf;
  AppendErrorResponse(&buf, kOpGet, kStatusMalformed, 0xABCDu);
  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
  Response resp;
  ASSERT_TRUE(DecodeResponse(payload, payload_len, &resp));
  EXPECT_EQ(resp.opcode, kOpGet);
  EXPECT_EQ(resp.status, kStatusMalformed);
  EXPECT_EQ(resp.request_id, 0xABCDu);
}

TEST(NetProtocolTest, ErrorResponseWithBodyIsRejected) {
  // Status != OK must carry an empty body.
  std::vector<uint8_t> payload;
  PutU8(&payload, kOpGet);
  PutU8(&payload, kStatusMalformed);
  PutU32(&payload, 1);
  PutU8(&payload, 0xFF);  // stray body byte
  Response resp;
  EXPECT_FALSE(DecodeResponse(payload.data(), payload.size(), &resp));
}

TEST(NetProtocolTest, TruncatedFrameNeedsMoreBytes) {
  std::vector<uint8_t> buf;
  AppendGet(&buf, 1, 42);
  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  // Every strict prefix is incomplete, never an error.
  for (size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(ExtractFrame(buf.data(), n, 0, &payload, &payload_len,
                           &consumed),
              0)
        << "prefix length " << n;
  }
  EXPECT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            1);
}

TEST(NetProtocolTest, OversizedLengthPrefixIsUnrecoverable) {
  std::vector<uint8_t> buf;
  PutU32(&buf, static_cast<uint32_t>(kMaxFrameBytes) + 1);
  const uint8_t* payload = nullptr;
  size_t payload_len = 0, consumed = 0;
  EXPECT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            -1);
  // Exactly at the cap is still legal framing.
  buf.clear();
  PutU32(&buf, static_cast<uint32_t>(kMaxFrameBytes));
  EXPECT_EQ(ExtractFrame(buf.data(), buf.size(), 0, &payload, &payload_len,
                         &consumed),
            0);  // legal, just incomplete
}

TEST(NetProtocolTest, UnknownOpcode) {
  std::vector<uint8_t> payload;
  PutU8(&payload, 0x7F);
  PutU32(&payload, 31337);
  Request req;
  EXPECT_EQ(DecodeRequest(payload.data(), payload.size(), &req),
            DecodeResult::kUnknownOp);
  // The header was readable, so the id is available for the error reply.
  EXPECT_EQ(req.request_id, 31337u);
}

TEST(NetProtocolTest, BodyLengthMismatches) {
  Request req;
  // Too short for even the header.
  std::vector<uint8_t> p{kOpGet, 1, 0};
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);

  // GET with a 7-byte key.
  p.clear();
  PutU8(&p, kOpGet);
  PutU32(&p, 2);
  for (int i = 0; i < 7; ++i) PutU8(&p, 0);
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);
  EXPECT_EQ(req.request_id, 2u);

  // PUT with only a key.
  p.clear();
  PutU8(&p, kOpPut);
  PutU32(&p, 3);
  PutU64(&p, 9);
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);

  // MGET whose count disagrees with the body length.
  p.clear();
  PutU8(&p, kOpMget);
  PutU32(&p, 4);
  PutU32(&p, 3);  // claims 3 keys
  PutU64(&p, 1);  // carries 1
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);

  // MGET over the element cap.
  p.clear();
  PutU8(&p, kOpMget);
  PutU32(&p, 5);
  PutU32(&p, kMaxMgetKeys + 1);
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);

  // STATS with a body.
  p.clear();
  PutU8(&p, kOpStats);
  PutU32(&p, 6);
  PutU8(&p, 1);
  EXPECT_EQ(DecodeRequest(p.data(), p.size(), &req),
            DecodeResult::kMalformed);
}

TEST(NetProtocolTest, PipelinedFramesExtractInOrder) {
  std::vector<uint8_t> buf;
  AppendGet(&buf, 1, 10);
  AppendPut(&buf, 2, 20, 200);
  const uint64_t keys[2] = {30, 40};
  AppendMget(&buf, 3, keys, 2);

  size_t off = 0;
  std::vector<uint8_t> ops;
  while (off < buf.size()) {
    const uint8_t* payload = nullptr;
    size_t payload_len = 0, consumed = 0;
    ASSERT_EQ(ExtractFrame(buf.data(), buf.size(), off, &payload,
                           &payload_len, &consumed),
              1);
    Request req;
    ASSERT_EQ(DecodeRequest(payload, payload_len, &req), DecodeResult::kOk);
    ops.push_back(req.opcode);
    off += consumed;
  }
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0], kOpGet);
  EXPECT_EQ(ops[1], kOpPut);
  EXPECT_EQ(ops[2], kOpMget);
}

TEST(NetProtocolTest, Names) {
  EXPECT_STREQ(OpName(kOpGet), "get");
  EXPECT_STREQ(OpName(0x55), "none");
  EXPECT_STREQ(StatusName(kStatusTooLarge), "too_large");
  EXPECT_STREQ(StatusName(0x55), "unknown");
}

}  // namespace
}  // namespace simdtree::net
