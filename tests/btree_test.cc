// Baseline B+-Tree tests: model-based randomized workloads against
// std::multimap with invariant validation, plus targeted edge cases for
// splits, merges, borrows, duplicates, iteration, scans, and bulk load.

#include "btree/btree.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree::btree {
namespace {

using Tree = BPlusTree<int64_t, int64_t>;

TEST(BPlusTreeTest, EmptyTree) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 0);
  EXPECT_FALSE(t.Contains(1));
  EXPECT_FALSE(t.Find(1).has_value());
  EXPECT_FALSE(t.Erase(1));
  EXPECT_TRUE(t.Validate());
  EXPECT_FALSE(t.begin().valid());
}

TEST(BPlusTreeTest, SingleInsertFindErase) {
  Tree t;
  t.Insert(42, 4200);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.height(), 1);
  EXPECT_EQ(t.Find(42).value(), 4200);
  EXPECT_FALSE(t.Find(41).has_value());
  EXPECT_TRUE(t.Validate());
  EXPECT_TRUE(t.Erase(42));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
}

TEST(BPlusTreeTest, AscendingInsertsSplitCorrectly) {
  Tree t(4);  // tiny nodes force deep trees
  for (int64_t i = 0; i < 1000; ++i) {
    t.Insert(i, i * 10);
    ASSERT_TRUE(t.Validate()) << "after insert " << i;
  }
  EXPECT_EQ(t.size(), 1000u);
  EXPECT_GT(t.height(), 3);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(t.Find(i).value(), i * 10);
  }
  EXPECT_FALSE(t.Contains(1000));
}

TEST(BPlusTreeTest, DescendingInserts) {
  Tree t(4);
  for (int64_t i = 999; i >= 0; --i) {
    t.Insert(i, -i);
    ASSERT_TRUE(t.Validate());
  }
  for (int64_t i = 0; i < 1000; ++i) ASSERT_EQ(t.Find(i).value(), -i);
}

TEST(BPlusTreeTest, IterationYieldsSortedOrder) {
  Tree t(6);
  Rng rng(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 500; ++i) {
    const int64_t k = static_cast<int64_t>(rng.NextBounded(10000));
    keys.push_back(k);
    t.Insert(k, k);
  }
  std::sort(keys.begin(), keys.end());
  std::vector<int64_t> seen;
  for (auto it = t.begin(); it.valid(); ++it) seen.push_back(it.key());
  EXPECT_EQ(seen, keys);
}

TEST(BPlusTreeTest, DuplicateKeysAllStored) {
  Tree t(4);
  for (int64_t v = 0; v < 100; ++v) t.Insert(7, v);
  t.Insert(6, -1);
  t.Insert(8, -2);
  EXPECT_EQ(t.size(), 102u);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.Count(7), 100u);
  EXPECT_EQ(t.Count(6), 1u);
  EXPECT_EQ(t.Count(9), 0u);
  EXPECT_TRUE(t.Contains(7));
  // Erase them all one by one.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Erase(7)) << i;
    ASSERT_TRUE(t.Validate()) << i;
  }
  EXPECT_FALSE(t.Erase(7));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.Contains(6));
  EXPECT_TRUE(t.Contains(8));
}

TEST(BPlusTreeTest, ScanRangeHalfOpen) {
  Tree t(8);
  for (int64_t i = 0; i < 100; ++i) t.Insert(i * 2, i);  // evens 0..198
  std::vector<int64_t> keys;
  t.ScanRange(10, 20, [&](int64_t k, const int64_t&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int64_t>{10, 12, 14, 16, 18}));
  keys.clear();
  t.ScanRange(11, 20, [&](int64_t k, const int64_t&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<int64_t>{12, 14, 16, 18}));
  keys.clear();
  t.ScanRange(10, 18, [&](int64_t k, const int64_t&) { keys.push_back(k); },
              /*hi_inclusive=*/true);
  EXPECT_EQ(keys, (std::vector<int64_t>{10, 12, 14, 16, 18}));
  keys.clear();
  t.ScanRange(500, 600, [&](int64_t k, const int64_t&) { keys.push_back(k); });
  EXPECT_TRUE(keys.empty());
}

TEST(BPlusTreeTest, LowerBoundIterAcrossLeaves) {
  Tree t(4);
  for (int64_t i = 0; i < 64; ++i) t.Insert(i * 10, i);
  for (int64_t probe = 0; probe <= 640; ++probe) {
    auto it = t.LowerBoundIter(probe);
    const int64_t expected = (probe + 9) / 10 * 10;
    if (expected <= 630) {
      ASSERT_TRUE(it.valid()) << probe;
      ASSERT_EQ(it.key(), expected) << probe;
    } else {
      ASSERT_FALSE(it.valid()) << probe;
    }
  }
}

TEST(BPlusTreeTest, BulkLoadFullFill) {
  std::vector<int64_t> keys(10000);
  std::vector<int64_t> values(10000);
  for (int64_t i = 0; i < 10000; ++i) {
    keys[static_cast<size_t>(i)] = i * 3;
    values[static_cast<size_t>(i)] = i;
  }
  Tree t = Tree::BulkLoad(keys.data(), values.data(), keys.size(), 1.0, 64);
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_TRUE(t.Validate());
  const TreeStats stats = t.Stats();
  EXPECT_GT(stats.avg_leaf_fill, 0.95);
  for (int64_t i = 0; i < 10000; i += 7) {
    ASSERT_EQ(t.Find(i * 3).value(), i);
    ASSERT_FALSE(t.Contains(i * 3 + 1));
  }
}

TEST(BPlusTreeTest, BulkLoadThenMutate) {
  std::vector<int64_t> keys, values;
  for (int64_t i = 0; i < 1000; ++i) {
    keys.push_back(i * 2);
    values.push_back(i);
  }
  Tree t = Tree::BulkLoad(keys.data(), values.data(), keys.size(), 1.0, 16);
  for (int64_t i = 0; i < 1000; ++i) {
    t.Insert(i * 2 + 1, -i);
    ASSERT_TRUE(t.Validate());
  }
  EXPECT_EQ(t.size(), 2000u);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(t.Erase(i * 2));
  }
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.size(), 1000u);
}

TEST(BPlusTreeTest, BulkLoadTinyInputs) {
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{5}, size_t{17}}) {
    std::vector<int64_t> keys(n), values(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = static_cast<int64_t>(i);
      values[i] = static_cast<int64_t>(i);
    }
    Tree t = Tree::BulkLoad(keys.data(), values.data(), n, 1.0, 4);
    EXPECT_EQ(t.size(), n);
    EXPECT_TRUE(t.Validate()) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(t.Contains(static_cast<int64_t>(i)));
    }
  }
}

TEST(BPlusTreeTest, SequentialSearchPolicyBehavesIdentically) {
  BPlusTree<int32_t, int32_t, SequentialSearchTag> t(8);
  Rng rng(17);
  std::multimap<int32_t, int32_t> model;
  for (int i = 0; i < 2000; ++i) {
    const int32_t k = static_cast<int32_t>(rng.NextBounded(500));
    t.Insert(k, i);
    model.emplace(k, i);
  }
  ASSERT_TRUE(t.Validate());
  for (int32_t k = 0; k < 500; ++k) {
    ASSERT_EQ(t.Contains(k), model.count(k) > 0);
    ASSERT_EQ(t.Count(k), model.count(k));
  }
}

// Randomized model test: mixed inserts/erases against std::multimap with
// full validation, across several node capacities and seeds.
struct ModelParam {
  int64_t capacity;
  uint64_t seed;
  int key_range;
};

class BPlusTreeModelTest : public testing::TestWithParam<ModelParam> {};

TEST_P(BPlusTreeModelTest, RandomOpsMatchMultimap) {
  const ModelParam p = GetParam();
  Tree t(p.capacity);
  std::multimap<int64_t, int64_t> model;
  Rng rng(p.seed);
  for (int op = 0; op < 4000; ++op) {
    const int64_t k =
        static_cast<int64_t>(rng.NextBounded(static_cast<uint64_t>(p.key_range)));
    const uint64_t action = rng.NextBounded(100);
    if (action < 60) {
      t.Insert(k, op);
      model.emplace(k, op);
    } else {
      const bool erased_tree = t.Erase(k);
      auto it = model.find(k);
      const bool erased_model = it != model.end();
      if (erased_model) model.erase(it);
      ASSERT_EQ(erased_tree, erased_model) << "op " << op << " key " << k;
    }
    if (op % 64 == 0) {
      ASSERT_TRUE(t.Validate()) << "op " << op;
      ASSERT_EQ(t.size(), model.size());
    }
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (int64_t k = 0; k < p.key_range; ++k) {
    ASSERT_EQ(t.Count(k), model.count(k)) << "key " << k;
  }
  // Drain everything.
  for (int64_t k = 0; k < p.key_range; ++k) {
    while (t.Erase(k)) {
    }
  }
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, BPlusTreeModelTest,
    testing::Values(ModelParam{3, 1, 50}, ModelParam{3, 2, 50},
                    ModelParam{4, 3, 200}, ModelParam{5, 4, 200},
                    ModelParam{8, 5, 1000}, ModelParam{16, 6, 1000},
                    ModelParam{64, 7, 5000}, ModelParam{4, 8, 10},
                    ModelParam{7, 9, 3}),
    [](const testing::TestParamInfo<ModelParam>& info) {
      return "cap" + std::to_string(info.param.capacity) + "seed" +
             std::to_string(info.param.seed) + "range" +
             std::to_string(info.param.key_range);
    });

TEST(BPlusTreeTest, StatsReportPlausibleNumbers) {
  Tree t(16);
  for (int64_t i = 0; i < 5000; ++i) t.Insert(i, i);
  const TreeStats s = t.Stats();
  EXPECT_EQ(s.keys, 5000u);
  EXPECT_GT(s.leaf_nodes, 300u);
  EXPECT_GT(s.inner_nodes, 10u);
  EXPECT_GT(s.memory_bytes, 5000u * 16);
  EXPECT_EQ(s.height, t.height());
}

TEST(BPlusTreeTest, UnsignedKeysWithExtremes) {
  BPlusTree<uint64_t, int64_t> t(8);
  t.Insert(0, 1);
  t.Insert(~0ULL, 2);
  t.Insert(~0ULL - 1, 3);
  t.Insert(1ULL << 63, 4);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(0).value(), 1);
  EXPECT_EQ(t.Find(~0ULL).value(), 2);
  EXPECT_EQ(t.Find(1ULL << 63).value(), 4);
  EXPECT_FALSE(t.Contains(12345));
}

TEST(BPlusTreeTest, MoveConstructionAndAssignment) {
  Tree a(8);
  for (int64_t i = 0; i < 100; ++i) a.Insert(i, i);
  Tree b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_TRUE(b.Validate());
  Tree c(4);
  c.Insert(1, 1);
  c = std::move(b);
  EXPECT_EQ(c.size(), 100u);
  EXPECT_TRUE(c.Contains(50));
}

}  // namespace
}  // namespace simdtree::btree
