// Cross-structure integration tests: every index structure must give the
// same answers to the same queries on the same workloads, matching a
// std::map/std::multimap oracle — the end-to-end guarantee behind every
// benchmark comparison in the paper.

#include "core/simdtree.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

TEST(IntegrationTest, AllStructuresAgreeOnDistinctKeyWorkload) {
  Rng rng(101);
  std::vector<uint64_t> keys = UniformDistinctKeys<uint64_t>(20000, rng);

  btree::BPlusTree<uint64_t, uint64_t> bt(64);
  segtree::SegTree<uint64_t, uint64_t, kary::Layout::kBreadthFirst> st_bf(64);
  segtree::SegTree<uint64_t, uint64_t, kary::Layout::kDepthFirst> st_df(64);
  segtrie::SegTrie<uint64_t, uint64_t> trie;
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> opt_trie;
  std::map<uint64_t, uint64_t> oracle;

  // Shuffled insertion order.
  std::vector<uint64_t> order = keys;
  std::shuffle(order.begin(), order.end(), rng);
  for (uint64_t k : order) {
    bt.Insert(k, k * 2);
    st_bf.Insert(k, k * 2);
    st_df.Insert(k, k * 2);
    trie.Insert(k, k * 2);
    opt_trie.Insert(k, k * 2);
    oracle[k] = k * 2;
  }

  // Point probes: every present key plus random misses.
  for (uint64_t k : keys) {
    ASSERT_EQ(bt.Find(k).value(), k * 2);
    ASSERT_EQ(st_bf.Find(k).value(), k * 2);
    ASSERT_EQ(st_df.Find(k).value(), k * 2);
    ASSERT_EQ(trie.Find(k).value(), k * 2);
    ASSERT_EQ(opt_trie.Find(k).value(), k * 2);
  }
  for (int i = 0; i < 5000; ++i) {
    const uint64_t probe = rng.Next();
    const bool expected = oracle.count(probe) > 0;
    ASSERT_EQ(bt.Contains(probe), expected);
    ASSERT_EQ(st_bf.Contains(probe), expected);
    ASSERT_EQ(st_df.Contains(probe), expected);
    ASSERT_EQ(trie.Contains(probe), expected);
    ASSERT_EQ(opt_trie.Contains(probe), expected);
  }

  // Erase half the keys from every structure.
  for (size_t i = 0; i < keys.size(); i += 2) {
    ASSERT_TRUE(bt.Erase(keys[i]));
    ASSERT_TRUE(st_bf.Erase(keys[i]));
    ASSERT_TRUE(st_df.Erase(keys[i]));
    ASSERT_TRUE(trie.Erase(keys[i]));
    ASSERT_TRUE(opt_trie.Erase(keys[i]));
    oracle.erase(keys[i]);
  }
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st_bf.Validate());
  ASSERT_TRUE(st_df.Validate());
  ASSERT_TRUE(trie.Validate());
  ASSERT_TRUE(opt_trie.Validate());
  for (uint64_t k : keys) {
    const bool expected = oracle.count(k) > 0;
    ASSERT_EQ(bt.Contains(k), expected);
    ASSERT_EQ(st_bf.Contains(k), expected);
    ASSERT_EQ(st_df.Contains(k), expected);
    ASSERT_EQ(trie.Contains(k), expected);
    ASSERT_EQ(opt_trie.Contains(k), expected);
  }
}

TEST(IntegrationTest, RangeScansAgreeBetweenBaselineAndSegTree) {
  Rng rng(202);
  btree::BPlusTree<uint32_t, uint32_t> bt(32);
  segtree::SegTree<uint32_t, uint32_t> st(32);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t k = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    bt.Insert(k, k);
    st.Insert(k, k);
  }
  for (int trial = 0; trial < 100; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(1u << 20));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.NextBounded(1u << 14));
    uint64_t sum_a = 0, sum_b = 0;
    size_t n_a = 0, n_b = 0;
    bt.ScanRange(lo, hi, [&](uint32_t k, uint32_t) { sum_a += k; ++n_a; });
    st.ScanRange(lo, hi, [&](uint32_t k, uint32_t) { sum_b += k; ++n_b; });
    ASSERT_EQ(n_a, n_b);
    ASSERT_EQ(sum_a, sum_b);
  }
}

TEST(IntegrationTest, PaperWorkloadFullDomain16BitWithDuplicates) {
  // The paper's 16-bit data sets span the whole domain with duplicates;
  // baseline and Seg-Tree must agree on every probe.
  const auto keys = CycledDomainKeys<uint16_t>(200000);
  std::vector<uint32_t> values(keys.size());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i);
  }
  auto bt = btree::BPlusTree<uint16_t, uint32_t>::BulkLoad(
      keys.data(), values.data(), keys.size());
  auto st = segtree::SegTree<uint16_t, uint32_t>::BulkLoad(
      keys.data(), values.data(), keys.size());
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st.Validate());
  for (uint32_t v = 0; v < 65536; v += 7) {
    const uint16_t k = static_cast<uint16_t>(v);
    ASSERT_EQ(bt.Contains(k), st.Contains(k)) << v;
    ASSERT_EQ(bt.Count(k), st.Count(k)) << v;
  }
}

TEST(IntegrationTest, KaryArrayMatchesTreeAnswers) {
  Rng rng(303);
  const auto keys = UniformDistinctKeys<int32_t>(5000, rng);
  kary::KaryArray<int32_t> arr(keys, kary::Layout::kBreadthFirst);
  segtree::SegTree<int32_t, int32_t> tree(338);
  for (int32_t k : keys) tree.Insert(k, k);
  for (int i = 0; i < 3000; ++i) {
    const int32_t probe = static_cast<int32_t>(rng.Next());
    ASSERT_EQ(arr.Contains(probe), tree.Contains(probe));
  }
}

TEST(IntegrationTest, VersionAndCpuInfoAvailable) {
  EXPECT_STREQ(kVersionString, "1.0.0");
  EXPECT_FALSE(simd::CpuFeatureString().empty());
}

}  // namespace
}  // namespace simdtree
