// Unit tests for the optimistic-lock-coupling primitives (core/olc.h),
// the NodePool's epoch-deferred reclamation (mem/arena.h), and the
// B+-tree's optimistic read paths against their locked twins.
//
// Everything here is tier-1: single-process, deterministic, fast. The
// multi-threaded differential suites live in olc_stress_test.cc.

#include <cstdlib>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "btree/btree.h"
#include "core/olc.h"
#include "gtest/gtest.h"
#include "mem/arena.h"
#include "obs/metrics.h"

namespace simdtree {
namespace {

using btree::BPlusTree;

TEST(VersionWord, SeqlockProtocol) {
  olc::VersionWord w;
  const uint64_t v0 = w.ReadBegin();
  EXPECT_TRUE(olc::VersionWord::IsStable(v0));
  EXPECT_TRUE(w.Validate(v0));
  EXPECT_FALSE(w.IsLockedOrDead());

  w.Lock();
  EXPECT_TRUE(w.IsLockedOrDead());
  EXPECT_FALSE(olc::VersionWord::IsStable(w.ReadBegin()));
  EXPECT_FALSE(w.Validate(v0));  // writer in progress

  w.Unlock();
  EXPECT_FALSE(w.IsLockedOrDead());
  const uint64_t v1 = w.ReadBegin();
  EXPECT_TRUE(olc::VersionWord::IsStable(v1));
  EXPECT_EQ(v1, v0 + 2);       // one full write cycle advances by 2
  EXPECT_FALSE(w.Validate(v0));  // writer completed in between
  EXPECT_TRUE(w.Validate(v1));
}

TEST(VersionWord, MarkDeadIsPermanentlyOdd) {
  olc::VersionWord w;
  w.MarkDead();
  EXPECT_TRUE(w.IsLockedOrDead());
  const uint64_t dead = w.ReadBegin();
  EXPECT_FALSE(olc::VersionWord::IsStable(dead));
  // Idempotent: a second MarkDead must not flip the word back to even.
  w.MarkDead();
  EXPECT_TRUE(w.IsLockedOrDead());
  EXPECT_EQ(w.ReadBegin(), dead);
}

TEST(VersionWord, MarkDeadOnLockedNodeStaysOdd) {
  // The Dismiss-before-free invariant's backstop: freeing a node whose
  // guard still holds the lock leaves the word odd (the guard must
  // Dismiss first, but MarkDead alone must never create an even word).
  olc::VersionWord w;
  w.Lock();
  const uint64_t locked = w.ReadBegin();
  w.MarkDead();
  EXPECT_EQ(w.ReadBegin(), locked);
  EXPECT_TRUE(w.IsLockedOrDead());
}

TEST(Epoch, PinNestingAndAdvance) {
  olc::EpochManager& em = olc::EpochManager::Global();
  const uint64_t start = em.current();
  {
    olc::EpochGuard outer;
    ASSERT_TRUE(outer.pinned());
    EXPECT_LE(em.MinActive(), em.current());
    {
      olc::EpochGuard inner;  // nested pin on the same thread
      EXPECT_TRUE(inner.pinned());
      EXPECT_LE(em.MinActive(), em.current());
    }
    // Still pinned by the outer guard.
    EXPECT_NE(em.MinActive(), olc::EpochManager::kIdle);
  }
  EXPECT_EQ(em.MinActive(), olc::EpochManager::kIdle);
  EXPECT_TRUE(em.TryAdvance());
  EXPECT_EQ(em.current(), start + 1);
}

TEST(Epoch, LaggingPinBlocksAdvance) {
  olc::EpochManager& em = olc::EpochManager::Global();
  olc::EpochGuard guard;
  ASSERT_TRUE(guard.pinned());
  const uint64_t pinned_at = em.current();
  // A pin at the current epoch does not block the first advance...
  EXPECT_TRUE(em.TryAdvance());
  // ...but now the pin lags the global epoch, so reclamation of
  // anything freed at the new epoch must wait: no further advance.
  EXPECT_EQ(em.MinActive(), pinned_at);
  EXPECT_FALSE(em.TryAdvance());
}

TEST(NodePoolDeferred, EnableRequiresArenaAndManager) {
  mem::NodePool pool(/*block_bytes=*/64);
  EXPECT_FALSE(pool.EnableDeferredReclamation(nullptr));
  if (!pool.arena_mode()) {
    // Heap fallback (SIMDTREE_DISABLE_ARENA=1): deferral must refuse so
    // the wrappers keep the locked read path.
    EXPECT_FALSE(
        pool.EnableDeferredReclamation(&olc::EpochManager::Global()));
    return;
  }
  EXPECT_TRUE(pool.EnableDeferredReclamation(&olc::EpochManager::Global()));
  EXPECT_TRUE(pool.deferred_enabled());
  // Idempotent.
  EXPECT_TRUE(pool.EnableDeferredReclamation(&olc::EpochManager::Global()));
}

TEST(NodePoolDeferred, NoReuseWhileReaderPinned) {
  mem::NodePool pool(/*block_bytes=*/64);
  if (!pool.arena_mode()) GTEST_SKIP() << "arena disabled";
  ASSERT_TRUE(pool.EnableDeferredReclamation(&olc::EpochManager::Global()));

  uint32_t slot = 0;
  void* block = pool.Alloc(&slot);
  ASSERT_NE(block, nullptr);
  std::memset(block, 0xAB, 64);

  olc::EpochGuard reader;
  ASSERT_TRUE(reader.pinned());
  pool.Free(block, slot);

  // The slot is quarantined, not recycled: its memory stays mapped (a
  // stale optimistic reader may still dereference it) and no new
  // allocation may alias it while this reader's pin is in flight.
  EXPECT_EQ(pool.DecodeOptimistic(slot), block);
  std::vector<std::pair<void*, uint32_t>> taken;
  for (int i = 0; i < 64; ++i) {
    uint32_t s = 0;
    void* p = pool.Alloc(&s);
    ASSERT_NE(p, nullptr);
    EXPECT_NE(s, slot) << "quarantined slot recycled under a pinned reader";
    taken.emplace_back(p, s);
  }
  const mem::ArenaStats pinned_stats = pool.Stats();
  EXPECT_GE(pinned_stats.deferred_blocks, 1u);
  for (auto& [p, s] : taken) pool.Free(p, s);
}

TEST(NodePoolDeferred, ReuseAfterReadersAdvance) {
  mem::NodePool pool(/*block_bytes=*/64);
  if (!pool.arena_mode()) GTEST_SKIP() << "arena disabled";
  olc::EpochManager& em = olc::EpochManager::Global();
  ASSERT_TRUE(pool.EnableDeferredReclamation(&em));

  uint32_t slot = 0;
  void* block = pool.Alloc(&slot);
  ASSERT_NE(block, nullptr);
  pool.Free(block, slot);

  // No reader in flight: after the epoch advances past the free, the
  // quarantine drains (Alloc runs TryAdvance+Purge itself) and the slot
  // re-enters circulation. Bounded loop: each Alloc advances at most
  // one epoch, the bucket needs MinActive() > its epoch.
  bool reused = false;
  std::vector<std::pair<void*, uint32_t>> taken;
  for (int i = 0; i < 8 && !reused; ++i) {
    uint32_t s = 0;
    void* p = pool.Alloc(&s);
    ASSERT_NE(p, nullptr);
    if (s == slot) {
      reused = true;
      pool.Free(p, s);
      break;
    }
    taken.emplace_back(p, s);
  }
  EXPECT_TRUE(reused) << "freed slot never drained from quarantine";
  for (auto& [p, s] : taken) pool.Free(p, s);
}

TEST(NodePoolDeferred, TornSlotDecodesToNull) {
  mem::NodePool pool(/*block_bytes=*/64);
  if (!pool.arena_mode()) GTEST_SKIP() << "arena disabled";
  ASSERT_TRUE(pool.EnableDeferredReclamation(&olc::EpochManager::Global()));
  uint32_t slot = 0;
  ASSERT_NE(pool.Alloc(&slot), nullptr);
  // Garbage refs (as a torn optimistic load would produce) must decode
  // to nullptr, never fault: out-of-range slab index and out-of-range
  // block index within a live slab.
  EXPECT_EQ(pool.DecodeOptimistic(~uint32_t{0}), nullptr);
  EXPECT_EQ(pool.DecodeOptimistic(slot | (uint32_t{1} << 30)), nullptr);
}

// --- tree-level optimistic paths vs their locked twins ---------------------

using Tree = BPlusTree<uint64_t, uint64_t>;

uint64_t ValueOf(uint64_t k) { return k * 0x9E3779B97F4A7C15ULL + 1; }

TEST(TreeOptimistic, EnableMatchesArenaMode) {
  Tree tree;
  const bool enabled = tree.EnableConcurrentReads();
  // Arena-backed trees with trivially-copyable payloads must arm; the
  // heap fallback must refuse (its decode path is not reader-safe).
  mem::NodePool probe(64);
  EXPECT_EQ(enabled, probe.arena_mode());
  EXPECT_EQ(tree.concurrent_reads_enabled(), enabled);
}

TEST(TreeOptimistic, FindMatchesLockedFind) {
  Tree tree;
  if (!tree.EnableConcurrentReads()) GTEST_SKIP() << "arena disabled";
  constexpr uint64_t kN = 5000;
  for (uint64_t k = 0; k < kN; ++k) tree.Insert(k * 3, ValueOf(k * 3));
  for (uint64_t k = 0; k < kN / 2; ++k) tree.Erase(k * 6);

  for (uint64_t probe = 0; probe < kN * 3 + 5; ++probe) {
    std::optional<uint64_t> opt;
    ASSERT_EQ(tree.FindOptimistic(probe, &opt), olc::ReadResult::kOk);
    EXPECT_EQ(opt, tree.Find(probe)) << "key " << probe;
  }
  EXPECT_GE(tree.height_hint(), 1);
}

TEST(TreeOptimistic, BatchEnginesMatchLockedFind) {
  Tree tree;
  if (!tree.EnableConcurrentReads()) GTEST_SKIP() << "arena disabled";
  constexpr uint64_t kN = 4096;
  for (uint64_t k = 0; k < kN; ++k) tree.Insert(k * 7, ValueOf(k * 7));

  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < kN * 7 + 10; k += 3) keys.push_back(k);
  std::vector<std::optional<uint64_t>> out(keys.size());
  std::vector<uint32_t> failed;

  tree.FindBatchOptimistic(keys.data(), keys.size(), out.data(), &failed);
  EXPECT_TRUE(failed.empty());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], tree.Find(keys[i])) << "pipelined key " << keys[i];
  }

  std::fill(out.begin(), out.end(), std::nullopt);
  failed.clear();
  tree.FindBatchGroupedOptimistic(keys.data(), keys.size(), out.data(),
                                  &failed);
  EXPECT_TRUE(failed.empty());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], tree.Find(keys[i])) << "grouped key " << keys[i];
  }
}

TEST(TreeOptimistic, ScanMatchesLockedScan) {
  Tree tree;
  if (!tree.EnableConcurrentReads()) GTEST_SKIP() << "arena disabled";
  constexpr uint64_t kN = 3000;
  for (uint64_t k = 0; k < kN; ++k) tree.Insert(k * 2, ValueOf(k * 2));
  // Duplicates at a few keys: the resume protocol must count them.
  for (int i = 0; i < 5; ++i) tree.Insert(100, ValueOf(100));

  for (const bool inclusive : {false, true}) {
    std::vector<std::pair<uint64_t, uint64_t>> locked, optimistic;
    tree.ScanRange(
        50, 4000,
        [&](uint64_t k, const uint64_t& v) { locked.emplace_back(k, v); },
        inclusive);
    uint64_t resume = 50;
    uint32_t skip = 0;
    ASSERT_EQ(tree.ScanRangeOptimistic(
                  4000, inclusive, &resume, &skip,
                  [&](uint64_t k, const uint64_t& v) {
                    optimistic.emplace_back(k, v);
                  }),
              olc::ReadResult::kOk);
    EXPECT_EQ(optimistic, locked) << "inclusive=" << inclusive;
  }
}

TEST(TreeOptimistic, ClearThenReuseStaysConsistent) {
  Tree tree;
  if (!tree.EnableConcurrentReads()) GTEST_SKIP() << "arena disabled";
  for (int round = 0; round < 3; ++round) {
    for (uint64_t k = 0; k < 2000; ++k) tree.Insert(k, ValueOf(k + round));
    tree.Clear();
    EXPECT_EQ(tree.size(), 0u);
    std::optional<uint64_t> opt;
    ASSERT_EQ(tree.FindOptimistic(7, &opt), olc::ReadResult::kOk);
    EXPECT_FALSE(opt.has_value());
  }
  for (uint64_t k = 0; k < 2000; ++k) tree.Insert(k, ValueOf(k));
  std::optional<uint64_t> opt;
  ASSERT_EQ(tree.FindOptimistic(1234, &opt), olc::ReadResult::kOk);
  EXPECT_EQ(opt, std::optional<uint64_t>(ValueOf(1234)));
}

TEST(OlcMetricsTest, RegistersAndPublishes) {
  const obs::OlcMetrics m = obs::OlcMetrics::Register();
  ASSERT_NE(m.read_retries, nullptr);
  ASSERT_NE(m.fallback_acquisitions, nullptr);
  obs::PublishEpochStats();
  // The global epoch starts at 1 and only ever advances.
  EXPECT_GE(m.epoch_current->Get(), 1.0);
  EXPECT_GE(m.epoch_deferred_slabs->Get(), 0.0);
  EXPECT_GE(m.epoch_deferred_blocks->Get(), 0.0);
}

TEST(ForceShardLocks, MatchesEnvironment) {
  const char* env = std::getenv("SIMDTREE_FORCE_SHARD_LOCKS");
  const bool expect = env != nullptr && env[0] != '\0' && env[0] != '0';
  EXPECT_EQ(olc::ForceShardLocks(), expect);
}

}  // namespace
}  // namespace simdtree
