// Differential coverage for the grouped (level-wise) batched descent:
// sort the batch once, visit each node once (kary/batch_search.h,
// btree/batch_descent.h, segtrie/segtrie.h FindBatchGrouped). The
// grouped engine reorders the work radically — sorted probes, frontier
// runs, one load per node — but must agree element-for-element with the
// single-query paths and report exactly the summed single-query logical
// cost in SearchCounters; the physical amortization is visible only in
// the separate nodes_loaded field. Batch sizes cover the degenerate
// (0, 1), the chunk boundary of the pipelined path (255, 256), and a
// size where every tree level is shared (4096); probe sets cover
// duplicates, misses, key neighbours, type extremes, and already-sorted
// and reverse-sorted input orders.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "btree/btree.h"
#include "core/batch.h"
#include "core/sharded.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "kary/batch_search.h"
#include "kary/kary_array.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "simd/bitmask_eval.h"
#include "simd/simd256.h"
#include "util/counters.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using kary::KaryArray;
using kary::Layout;
using kary::Storage;
using simd::Backend;

constexpr size_t kGroupedBatchSizes[] = {0, 1, 255, 256, 4096};

// Probes covering hits, misses, neighbours of keys, and type extremes.
template <typename T>
std::vector<T> MakeProbes(const std::vector<T>& keys, size_t count,
                          Rng& rng) {
  std::vector<T> probes;
  if (count == 0) return probes;
  probes = {std::numeric_limits<T>::min(), std::numeric_limits<T>::max(),
            T{0}};
  for (T k : keys) {
    probes.push_back(k);
    if (k != std::numeric_limits<T>::min())
      probes.push_back(static_cast<T>(k - 1));
    if (k != std::numeric_limits<T>::max())
      probes.push_back(static_cast<T>(k + 1));
  }
  while (probes.size() < count) probes.push_back(static_cast<T>(rng.Next()));
  probes.resize(count);
  return probes;
}

// The three input orders the sort must be indifferent to.
enum class ProbeOrder { kShuffled, kSorted, kReversed };

template <typename T>
void ApplyOrder(std::vector<T>* probes, ProbeOrder order) {
  if (order == ProbeOrder::kSorted) {
    std::sort(probes->begin(), probes->end());
  } else if (order == ProbeOrder::kReversed) {
    std::sort(probes->begin(), probes->end(), std::greater<T>());
  }
}

// --- KaryArray grouped vs std:: oracle and counted singles ----------------

template <typename T, typename Eval, Backend B, int kBits>
void CheckKaryGrouped(const std::vector<T>& keys, Layout layout,
                      Storage storage) {
  KaryArray<T, kBits> arr(keys, layout, storage);
  // Rebuild the linearized array exactly as KaryArray does, so the
  // low-level counted singles can serve as the cost oracle.
  kary::KaryShape shape = kary::KaryShape::For(
      simd::LaneTraits<T, kBits>::kArity, keys.empty() ? 1 : keys.size());
  const kary::KaryLayout kl(shape, layout);
  const int64_t stored =
      kl.StoredSlots(static_cast<int64_t>(keys.size()), storage);
  std::vector<T> lin(static_cast<size_t>(stored));
  kl.Linearize(keys.data(), static_cast<int64_t>(keys.size()), lin.data(),
               stored, kary::PadValue<T>());
  const int64_t n = static_cast<int64_t>(keys.size());

  Rng rng(101);
  for (size_t batch : kGroupedBatchSizes) {
    for (ProbeOrder order : {ProbeOrder::kShuffled, ProbeOrder::kSorted,
                             ProbeOrder::kReversed}) {
      auto probes = MakeProbes<T>(keys, batch, rng);
      ApplyOrder(&probes, order);

      SearchCounters want;
      std::vector<int64_t> want_ub(batch);
      for (size_t i = 0; i < batch; ++i) {
        want_ub[i] = layout == Layout::kBreadthFirst
                         ? kary::UpperBoundBfCounted<T, Eval, B, kBits>(
                               lin.data(), stored, n, probes[i], &want)
                         : kary::UpperBoundDfCounted<T, Eval, B, kBits>(
                               lin.data(), stored, n, probes[i], &want);
      }

      std::vector<int64_t> ub(batch);
      SearchCounters got;
      arr.template UpperBoundBatchGrouped<Eval, B>(probes.data(), batch,
                                                   ub.data(), &got);
      for (size_t i = 0; i < batch; ++i) {
        const int64_t want_std =
            std::upper_bound(keys.begin(), keys.end(), probes[i]) -
            keys.begin();
        ASSERT_EQ(ub[i], want_ub[i])
            << "batch=" << batch << " order=" << static_cast<int>(order)
            << " i=" << i << " v=" << static_cast<int64_t>(probes[i]);
        ASSERT_EQ(ub[i], want_std) << "batch=" << batch << " i=" << i;
      }
      EXPECT_EQ(got.simd_comparisons, want.simd_comparisons)
          << "batch=" << batch << " order=" << static_cast<int>(order);
      if (batch > 0 && n > 0) {
        EXPECT_GT(got.nodes_loaded, 0u);
        // Physical loads never exceed the logical per-query level work.
        EXPECT_LE(got.nodes_loaded, got.simd_comparisons + batch);
      }

      // Lower bound: grouped vs std::lower_bound, cost vs the pipelined
      // path (both synthesize from the same per-query upper bounds).
      std::vector<int64_t> lb(batch), lb_pipe(batch);
      SearchCounters got_lb, want_lb;
      arr.template LowerBoundBatchGrouped<Eval, B>(probes.data(), batch,
                                                   lb.data(), &got_lb);
      arr.template LowerBoundBatch<Eval, B>(probes.data(), batch,
                                            lb_pipe.data(),
                                            kDefaultBatchGroup, &want_lb);
      for (size_t i = 0; i < batch; ++i) {
        const int64_t want_std =
            std::lower_bound(keys.begin(), keys.end(), probes[i]) -
            keys.begin();
        ASSERT_EQ(lb[i], want_std) << "batch=" << batch << " i=" << i;
        ASSERT_EQ(lb[i], lb_pipe[i]) << "batch=" << batch << " i=" << i;
      }
      EXPECT_EQ(got_lb.simd_comparisons, want_lb.simd_comparisons)
          << "batch=" << batch;
    }
  }
}

template <typename T, typename Eval, Backend B, int kBits>
void CheckKaryGroupedAllShapes() {
  Rng rng(2014);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{17}, int64_t{1000}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());
    CheckKaryGrouped<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                        Storage::kTruncated);
    CheckKaryGrouped<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                        Storage::kPerfect);
    CheckKaryGrouped<T, Eval, B, kBits>(keys, Layout::kDepthFirst,
                                        Storage::kPerfect);
    // Heavy duplication: few distinct values.
    for (auto& k : keys) k = static_cast<T>(rng.NextBounded(5) * 7);
    std::sort(keys.begin(), keys.end());
    CheckKaryGrouped<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                        Storage::kTruncated);
    CheckKaryGrouped<T, Eval, B, kBits>(keys, Layout::kDepthFirst,
                                        Storage::kPerfect);
  }
}

TEST(GroupedKaryTest, Sse128AllLayouts) {
  if constexpr (simd::kHaveSse) {
    CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval, Backend::kSse,
                              128>();
  }
}

TEST(GroupedKaryTest, Scalar128AllLayouts) {
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                            128>();
  CheckKaryGroupedAllShapes<uint32_t, simd::BitShiftEval, Backend::kScalar,
                            128>();
}

TEST(GroupedKaryTest, OtherKeyWidths) {
  CheckKaryGroupedAllShapes<uint8_t, simd::PopcountEval,
                            simd::kDefaultBackend, 128>();
  CheckKaryGroupedAllShapes<int16_t, simd::PopcountEval,
                            simd::kDefaultBackend, 128>();
  CheckKaryGroupedAllShapes<int64_t, simd::PopcountEval,
                            simd::kDefaultBackend, 128>();
}

TEST(GroupedKaryTest, Width256) {
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                            256>();
#if defined(__AVX2__)
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval, Backend::kSse,
                            256>();
#endif
  // Runtime dispatch: native on AVX2 hosts, scalar image elsewhere —
  // identical answers either way.
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval,
                            simd::kDefaultBackend, 256>();
}

TEST(GroupedKaryTest, Width512) {
  // The scalar 512-bit image (k = 65/33/17/9) runs on any hardware; the
  // dispatch backend upgrades to native EVEX kernels on AVX-512 hosts.
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                            512>();
  CheckKaryGroupedAllShapes<uint32_t, simd::PopcountEval,
                            simd::kDefaultBackend, 512>();
  CheckKaryGroupedAllShapes<int64_t, simd::SwitchCaseEval,
                            simd::kDefaultBackend, 512>();
}

// --- Tree FindBatchGrouped / LowerBoundBatchGrouped -----------------------

template <typename TreeT, typename Key>
void CheckTreeGrouped(const TreeT& tree, const std::vector<Key>& keys) {
  Rng rng(7);
  for (size_t batch : kGroupedBatchSizes) {
    for (ProbeOrder order : {ProbeOrder::kShuffled, ProbeOrder::kSorted,
                             ProbeOrder::kReversed}) {
      auto probes = MakeProbes<Key>(keys, batch, rng);
      ApplyOrder(&probes, order);

      // Result parity with the single-query paths.
      std::vector<const uint64_t*> found(batch);
      std::vector<typename TreeT::ConstIterator> lbs(batch);
      tree.FindBatchGrouped(probes.data(), batch, found.data());
      tree.LowerBoundBatchGrouped(probes.data(), batch, lbs.data());
      for (size_t i = 0; i < batch; ++i) {
        const auto want = tree.Find(probes[i]);
        ASSERT_EQ(found[i] != nullptr, want.has_value())
            << "batch=" << batch << " order=" << static_cast<int>(order)
            << " i=" << i;
        if (want.has_value()) {
          ASSERT_EQ(*found[i], *want) << "batch=" << batch << " i=" << i;
        }
        const auto want_it = tree.LowerBoundIter(probes[i]);
        ASSERT_EQ(lbs[i].valid(), want_it.valid())
            << "batch=" << batch << " i=" << i;
        if (want_it.valid()) {
          ASSERT_EQ(lbs[i].key(), want_it.key()) << "i=" << i;
          ASSERT_EQ(lbs[i].value(), want_it.value()) << "i=" << i;
        }
      }

      // Logical cost parity with summed counted singles; the physical
      // amortization (nodes_loaded) never exceeds the logical visits.
      SearchCounters want_c;
      for (Key p : probes) tree.FindCounted(p, &want_c);
      SearchCounters got_c;
      tree.FindBatchGrouped(probes.data(), batch, found.data(), &got_c);
      EXPECT_EQ(got_c.nodes_visited, want_c.nodes_visited)
          << "batch=" << batch << " order=" << static_cast<int>(order);
      if (batch > 0 && !keys.empty()) {
        EXPECT_GT(got_c.nodes_loaded, 0u);
        EXPECT_LE(got_c.nodes_loaded, got_c.nodes_visited);
      }

      // LowerBound cost contract: identical logical work to the
      // pipelined batch (which is itself group-invariant).
      SearchCounters lb_grouped, lb_pipe;
      tree.LowerBoundBatchGrouped(probes.data(), batch, lbs.data(),
                                  &lb_grouped);
      tree.LowerBoundBatch(probes.data(), batch, lbs.data(),
                           kDefaultBatchGroup, &lb_pipe);
      EXPECT_EQ(lb_grouped.nodes_visited, lb_pipe.nodes_visited)
          << "batch=" << batch << " order=" << static_cast<int>(order);
    }
  }
}

template <typename TreeT>
void CheckTreeGroupedAllShapes() {
  using Key = typename TreeT::KeyType;
  // Empty tree: everything misses, nothing is loaded.
  {
    TreeT tree(16);
    const Key probes[3] = {Key{0}, Key{1}, Key{42}};
    const uint64_t* out[3];
    typename TreeT::ConstIterator its[3];
    SearchCounters c;
    tree.FindBatchGrouped(probes, 3, out, &c);
    tree.LowerBoundBatchGrouped(probes, 3, its);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(out[i], nullptr);
      EXPECT_FALSE(its[i].valid());
    }
    EXPECT_EQ(c.nodes_loaded, 0u);
  }
  Rng rng(13);
  // Incrementally built with duplicates (multimap), small fanout for
  // depth; then a bulk-loaded larger tree.
  {
    TreeT tree(8);
    std::vector<Key> keys;
    for (int i = 0; i < 3000; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(1200));
      keys.push_back(k);
      tree.Insert(k, static_cast<uint64_t>(i));
    }
    std::sort(keys.begin(), keys.end());
    CheckTreeGrouped(tree, keys);
  }
  {
    std::vector<Key> keys(20000);
    for (auto& k : keys) k = static_cast<Key>(rng.Next());
    std::sort(keys.begin(), keys.end());
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < values.size(); ++i) values[i] = i;
    TreeT tree = TreeT::BulkLoad(keys.data(), values.data(), keys.size());
    CheckTreeGrouped(tree, keys);
  }
}

TEST(GroupedTreeTest, PlainBPlusTreeBinary) {
  CheckTreeGroupedAllShapes<btree::BPlusTree<uint32_t, uint64_t>>();
}

TEST(GroupedTreeTest, PlainBPlusTreeSequential) {
  CheckTreeGroupedAllShapes<
      btree::BPlusTree<uint32_t, uint64_t, btree::SequentialSearchTag>>();
}

TEST(GroupedTreeTest, SegTreeBreadthFirst) {
  CheckTreeGroupedAllShapes<
      segtree::SegTree<uint32_t, uint64_t, Layout::kBreadthFirst>>();
}

TEST(GroupedTreeTest, SegTreeDepthFirst) {
  CheckTreeGroupedAllShapes<
      segtree::SegTree<uint32_t, uint64_t, Layout::kDepthFirst>>();
}

TEST(GroupedTreeTest, SegTreeEvalAndBackendCombos) {
  CheckTreeGroupedAllShapes<segtree::SegTree<
      uint32_t, uint64_t, Layout::kBreadthFirst, simd::BitShiftEval,
      Backend::kScalar>>();
  CheckTreeGroupedAllShapes<segtree::SegTree<
      uint64_t, uint64_t, Layout::kBreadthFirst, simd::PopcountEval,
      simd::kDefaultBackend>>();
#if defined(__AVX2__)
  CheckTreeGroupedAllShapes<segtree::SegTree<
      uint32_t, uint64_t, Layout::kBreadthFirst, simd::PopcountEval,
      Backend::kSse, 256>>();
#endif
}

// --- Seg-Trie FindBatchGrouped --------------------------------------------

template <typename TrieT>
void CheckTrieGrouped() {
  using Key = typename TrieT::KeyType;
  TrieT trie;
  // Empty trie: everything misses.
  {
    const Key probes[2] = {Key{0}, Key{77}};
    const uint64_t* out[2];
    SearchCounters c;
    trie.FindBatchGrouped(probes, 2, out, &c);
    EXPECT_EQ(out[0], nullptr);
    EXPECT_EQ(out[1], nullptr);
    EXPECT_EQ(c.nodes_loaded, 0u);
  }
  Rng rng(23);
  std::vector<Key> keys;
  for (int i = 0; i < 4000; ++i) {
    // Dense low keys, shared-prefix clusters, and full-width keys so
    // lookups terminate at different trie levels.
    Key k;
    switch (i % 3) {
      case 0: k = static_cast<Key>(rng.NextBounded(2048)); break;
      case 1:
        k = static_cast<Key>(Key{0xAB} << (sizeof(Key) * 8 - 8)) |
            static_cast<Key>(rng.NextBounded(4096));
        break;
      default: k = static_cast<Key>(rng.Next()); break;
    }
    keys.push_back(k);
    trie.Insert(k, static_cast<uint64_t>(i));
  }
  for (size_t batch : kGroupedBatchSizes) {
    for (ProbeOrder order : {ProbeOrder::kShuffled, ProbeOrder::kSorted,
                             ProbeOrder::kReversed}) {
      auto probes = MakeProbes<Key>(keys, batch, rng);
      ApplyOrder(&probes, order);
      std::vector<const uint64_t*> out(batch);
      trie.FindBatchGrouped(probes.data(), batch, out.data());
      for (size_t i = 0; i < batch; ++i) {
        const auto want = trie.Find(probes[i]);
        ASSERT_EQ(out[i] != nullptr, want.has_value())
            << "batch=" << batch << " order=" << static_cast<int>(order)
            << " i=" << i;
        if (want.has_value()) ASSERT_EQ(*out[i], *want) << "i=" << i;
      }
      // Full logical cost parity with summed counted singles.
      SearchCounters want_c;
      for (Key p : probes) trie.FindCounted(p, &want_c);
      SearchCounters got_c;
      trie.FindBatchGrouped(probes.data(), batch, out.data(), &got_c);
      EXPECT_EQ(got_c.nodes_visited, want_c.nodes_visited)
          << "batch=" << batch << " order=" << static_cast<int>(order);
      EXPECT_EQ(got_c.simd_comparisons, want_c.simd_comparisons)
          << "batch=" << batch;
      EXPECT_EQ(got_c.scalar_comparisons, want_c.scalar_comparisons)
          << "batch=" << batch;
      if (batch > 0) {
        EXPECT_GT(got_c.nodes_loaded, 0u);
        EXPECT_LE(got_c.nodes_loaded, got_c.nodes_visited);
      }
    }
  }
}

TEST(GroupedTrieTest, PlainSegTrie64) {
  CheckTrieGrouped<segtrie::SegTrie<uint64_t, uint64_t>>();
}

TEST(GroupedTrieTest, OptimizedSegTrie64) {
  CheckTrieGrouped<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
}

TEST(GroupedTrieTest, PlainSegTrie32) {
  CheckTrieGrouped<segtrie::SegTrie<uint32_t, uint64_t>>();
}

// --- wrapper dispatch: heuristic must never change an answer --------------

template <typename Index>
void CheckSynchronizedGrouped() {
  using Key = typename Index::KeyType;
  SynchronizedIndex<Index> index;
  Rng rng(37);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    const Key k = static_cast<Key>(rng.Next());
    keys.push_back(k);
    index.Insert(k, static_cast<uint64_t>(i));
  }
  // 4096 crosses the UseGroupedDescent threshold (grouped route); 255
  // stays below it (pipelined route). Both must agree with Find.
  for (size_t batch : kGroupedBatchSizes) {
    auto probes = MakeProbes<Key>(keys, batch, rng);
    std::vector<std::optional<uint64_t>> out(batch);
    index.FindBatch(probes.data(), batch, out.data());
    for (size_t i = 0; i < batch; ++i) {
      const auto want = index.Find(probes[i]);
      ASSERT_EQ(out[i].has_value(), want.has_value())
          << "batch=" << batch << " i=" << i;
      if (want.has_value()) ASSERT_EQ(*out[i], *want) << "i=" << i;
    }
  }
}

TEST(GroupedDispatchTest, SynchronizedSegTree) {
  CheckSynchronizedGrouped<segtree::SegTree<uint32_t, uint64_t>>();
}

TEST(GroupedDispatchTest, SynchronizedSegTrie) {
  CheckSynchronizedGrouped<segtrie::SegTrie<uint64_t, uint64_t>>();
}

template <typename Index>
void CheckShardedGrouped(size_t shards) {
  using Key = typename Index::KeyType;
  ShardedIndex<Index> index(shards);
  Rng rng(41);
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    const Key k = static_cast<Key>(rng.Next());  // full-domain spread
    keys.push_back(k);
    index.Insert(k, static_cast<uint64_t>(i));
  }
  for (size_t batch : kGroupedBatchSizes) {
    auto probes = MakeProbes<Key>(keys, batch, rng);
    std::vector<std::optional<uint64_t>> out(batch);
    index.FindBatch(probes.data(), batch, out.data());
    for (size_t i = 0; i < batch; ++i) {
      const auto want = index.Find(probes[i]);
      ASSERT_EQ(out[i].has_value(), want.has_value())
          << "shards=" << shards << " batch=" << batch << " i=" << i;
      if (want.has_value()) ASSERT_EQ(*out[i], *want) << "i=" << i;
    }
  }
}

TEST(GroupedDispatchTest, ShardedSegTree) {
  CheckShardedGrouped<segtree::SegTree<uint32_t, uint64_t>>(4);
}

TEST(GroupedDispatchTest, ShardedSegTreeSingleShardFastPath) {
  CheckShardedGrouped<segtree::SegTree<uint32_t, uint64_t>>(1);
}

TEST(GroupedDispatchTest, ShardedSegTrie) {
  CheckShardedGrouped<segtrie::SegTrie<uint64_t, uint64_t>>(4);
}

// The heuristic itself: monotone in n, gated on levels.
TEST(GroupedDispatchTest, UseGroupedDescentHeuristic) {
  EXPECT_FALSE(UseGroupedDescent(0, 3));
  EXPECT_FALSE(UseGroupedDescent(100, 0));
  const size_t at = static_cast<size_t>(3 * kGroupedMinBatchPerLevel);
  EXPECT_FALSE(UseGroupedDescent(at - 1, 3));
  EXPECT_TRUE(UseGroupedDescent(at, 3));
  EXPECT_TRUE(UseGroupedDescent(at * 10, 3));
}

}  // namespace
}  // namespace simdtree
