// Flight-recorder tests (obs/trace.h): ring wraparound, deterministic
// 1-in-N sampling, slow-query promotion and bounded retention,
// multi-thread ring merge, the OpenMetrics/JSON exposition round trip
// (obs/export.h), and the stats server's endpoints over a real socket
// (obs/stats_server.h). The concurrent record/merge soak is the TSan
// target for the seqlock ring scheme.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "obs/trace.h"
#include "segtree/segtree.h"

namespace simdtree {
namespace {

using obs::DescentTrace;
using obs::Tracer;
using obs::TraceRing;

DescentTrace MakeTrace(uint64_t key, uint64_t start_ns,
                       uint64_t latency_ns) {
  DescentTrace t;
  t.key = key;
  t.start_ns = start_ns;
  t.latency_ns = latency_ns;
  return t;
}

// --- TraceRing ------------------------------------------------------------

TEST(TraceRingTest, FreshSlotsAreUnreadable) {
  TraceRing ring;
  DescentTrace out;
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_FALSE(ring.TryRead(0, &out));
  EXPECT_FALSE(ring.TryRead(TraceRing::kCapacity - 1, &out));
}

TEST(TraceRingTest, WrapAroundRetainsNewest) {
  TraceRing ring;
  const uint64_t total = TraceRing::kCapacity + 37;
  for (uint64_t i = 0; i < total; ++i) {
    ring.Write(MakeTrace(/*key=*/i, /*start_ns=*/i * 10, /*latency_ns=*/i));
  }
  EXPECT_EQ(ring.head(), total);
  // The newest kCapacity writes are all readable with intact payloads;
  // older ones were overwritten in place.
  DescentTrace out;
  for (uint64_t i = total - TraceRing::kCapacity; i < total; ++i) {
    ASSERT_TRUE(ring.TryRead(i % TraceRing::kCapacity, &out)) << i;
    EXPECT_EQ(out.key, i);
    EXPECT_EQ(out.start_ns, i * 10);
  }
}

// --- sampling -------------------------------------------------------------

TEST(TraceSamplingTest, DeterministicOneInN) {
  Tracer::Global().Reset();  // also resets this thread's countdown
  obs::EnableTracing(4);
  EXPECT_EQ(obs::TraceSampleRate(), 4u);
  std::vector<int> sampled;
  for (int i = 1; i <= 100; ++i) {
    if (obs::TraceShouldSample()) sampled.push_back(i);
  }
  obs::EnableTracing(0);
  ASSERT_EQ(sampled.size(), 25u);
  for (size_t j = 0; j < sampled.size(); ++j) {
    EXPECT_EQ(sampled[j], static_cast<int>(4 * (j + 1)));
  }
}

TEST(TraceSamplingTest, RateZeroNeverSamples) {
  obs::EnableTracing(0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(obs::TraceShouldSample());
  }
}

TEST(TraceSamplingTest, RateOneSamplesEverything) {
  Tracer::Global().Reset();
  obs::EnableTracing(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(obs::TraceShouldSample());
  }
  obs::EnableTracing(0);
}

// --- slow-query log -------------------------------------------------------

TEST(TracerTest, SlowPromotionHonorsThreshold) {
  Tracer tracer;
  tracer.SetSlowThresholdNs(1000);
  tracer.Record(MakeTrace(1, 10, /*latency_ns=*/999));
  EXPECT_EQ(tracer.recorded(), 1u);
  EXPECT_EQ(tracer.slow_recorded(), 0u);

  tracer.Record(MakeTrace(2, 20, /*latency_ns=*/1000));  // at threshold
  tracer.Record(MakeTrace(3, 30, /*latency_ns=*/5000));
  EXPECT_EQ(tracer.slow_recorded(), 2u);
  const auto slow = tracer.SlowSnapshot();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].key, 2u);
  EXPECT_EQ(slow[1].key, 3u);
  EXPECT_EQ(slow[0].slow, 1);  // the promoted flag is set on the copy
  // The ring copy agrees with the slow copy on the flag.
  const auto recent = tracer.Snapshot();
  ASSERT_EQ(recent.size(), 3u);
  EXPECT_EQ(recent[0].slow, 0);
  EXPECT_EQ(recent[1].slow, 1);
  EXPECT_EQ(recent[2].slow, 1);

  // Threshold 0 disables promotion entirely.
  tracer.SetSlowThresholdNs(0);
  tracer.Record(MakeTrace(4, 40, /*latency_ns=*/~uint64_t{0}));
  EXPECT_EQ(tracer.slow_recorded(), 2u);
}

TEST(TracerTest, SlowRetentionDropsOldest) {
  Tracer tracer;
  tracer.SetSlowThresholdNs(1);
  const uint64_t total = Tracer::kSlowCapacity + 10;
  for (uint64_t i = 0; i < total; ++i) {
    tracer.Record(MakeTrace(/*key=*/i, /*start_ns=*/i, /*latency_ns=*/100));
  }
  EXPECT_EQ(tracer.slow_recorded(), total);
  const auto slow = tracer.SlowSnapshot();
  ASSERT_EQ(slow.size(), Tracer::kSlowCapacity);
  // Oldest first, and the 10 oldest entries were dropped.
  for (size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].key, 10 + i);
  }
}

// --- per-thread rings + merge ---------------------------------------------

TEST(TracerTest, SnapshotMergesThreadRingsInStartOrder) {
  Tracer tracer;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t key = static_cast<uint64_t>(t) * 1000 + i;
        // start_ns == key makes the global sort order checkable.
        tracer.Record(MakeTrace(key, /*start_ns=*/key, /*latency_ns=*/1));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(tracer.recorded(), kThreads * kPerThread);
  const auto all = tracer.Snapshot();
  ASSERT_EQ(all.size(), kThreads * kPerThread);
  std::set<uint64_t> keys;
  std::set<uint32_t> thread_ids;
  for (size_t i = 0; i < all.size(); ++i) {
    keys.insert(all[i].key);
    thread_ids.insert(all[i].thread_id);
    if (i > 0) {
      EXPECT_GE(all[i].start_ns, all[i - 1].start_ns);
    }
  }
  EXPECT_EQ(keys.size(), kThreads * kPerThread);  // nothing lost or torn
  EXPECT_EQ(thread_ids.size(), static_cast<size_t>(kThreads));

  // A capped snapshot keeps the newest by start time.
  const auto newest = tracer.Snapshot(/*max_traces=*/50);
  ASSERT_EQ(newest.size(), 50u);
  EXPECT_EQ(newest.back().start_ns, all.back().start_ns);
  EXPECT_GE(newest.front().start_ns, all[all.size() - 50].start_ns);
}

// TSan soak: writers hammer their rings (with slow promotions mixed in)
// while readers continuously take merged snapshots. Every trace a
// reader observes must be internally consistent — a torn seqlock read
// would break the key/start_ns/latency_ns relation.
TEST(TracerTest, ConcurrentRecordAndMergeSoak) {
  Tracer tracer;
  tracer.SetSlowThresholdNs(7 * 1900);  // promotes ~5% of writes
  constexpr int kWriters = 4;
  const uint64_t per_writer = 20000;
  std::atomic<int> writers_done{0};
  std::atomic<uint64_t> torn{0};

  auto check = [&torn](const DescentTrace& t) {
    if (t.start_ns != t.key * 3 || t.latency_ns != 7 * (t.key % 2000)) {
      torn.fetch_add(1, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&tracer, &writers_done, w, per_writer] {
      for (uint64_t i = 0; i < per_writer; ++i) {
        const uint64_t key = static_cast<uint64_t>(w) * per_writer + i;
        tracer.Record(
            MakeTrace(key, /*start_ns=*/key * 3,
                      /*latency_ns=*/7 * (key % 2000)));
      }
      writers_done.fetch_add(1);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&tracer, &writers_done, &check] {
      while (writers_done.load() < kWriters) {
        for (const DescentTrace& t : tracer.Snapshot()) check(t);
        for (const DescentTrace& t : tracer.SlowSnapshot()) check(t);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(tracer.recorded(), kWriters * per_writer);
  // Final quiescent snapshot: full rings, all consistent.
  const auto all = tracer.Snapshot();
  EXPECT_EQ(all.size(), kWriters * TraceRing::kCapacity);
  for (const DescentTrace& t : all) check(t);
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_EQ(tracer.SlowSnapshot().size(), Tracer::kSlowCapacity);
}

// --- exposition -----------------------------------------------------------

TEST(ExportTest, SanitizeAndValidateNames) {
  EXPECT_EQ(obs::SanitizeMetricName("cli.profile.read_lock_ns"),
            "cli_profile_read_lock_ns");
  EXPECT_EQ(obs::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(obs::SanitizeMetricName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::SanitizeMetricName(""), "_");
  EXPECT_EQ(obs::SanitizeMetricName("ok:name_1"), "ok:name_1");

  EXPECT_TRUE(obs::IsValidMetricName("ok:name_1"));
  EXPECT_TRUE(obs::IsValidMetricName("_private"));
  EXPECT_FALSE(obs::IsValidMetricName(""));
  EXPECT_FALSE(obs::IsValidMetricName("9lives"));
  EXPECT_FALSE(obs::IsValidMetricName("has.dot"));
  // Sanitize always produces a valid name.
  for (const char* raw : {"a.b", "-", "..", "x y z", "0"}) {
    EXPECT_TRUE(obs::IsValidMetricName(obs::SanitizeMetricName(raw))) << raw;
  }
}

TEST(ExportTest, EscapeLabelValue) {
  EXPECT_EQ(obs::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::EscapeLabelValue("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ExportTest, OpenMetricsGoldenRoundTrip) {
  obs::MetricsRegistry reg;
  reg.GetCounter("req.count")->Add(42);
  reg.GetGauge("load-avg")->Set(1.5);
  obs::LogHistogram* h = reg.GetHistogram("lat.ns");
  h->Record(5);
  h->Record(5);
  h->Record(5);
  h->Record(10);

  // Exact-region values: bucket 5 has edge 6, bucket 10 has edge 11.
  const std::string expected =
      "# TYPE req_count counter\n"
      "req_count_total 42\n"
      "# TYPE load_avg gauge\n"
      "load_avg 1.5\n"
      "# TYPE lat_ns histogram\n"
      "lat_ns_bucket{le=\"6\"} 3\n"
      "lat_ns_bucket{le=\"11\"} 4\n"
      "lat_ns_bucket{le=\"+Inf\"} 4\n"
      "lat_ns_count 4\n"
      "lat_ns_sum 25\n"
      "# EOF\n";
  EXPECT_EQ(obs::RenderOpenMetrics(reg.Snap()), expected);
}

TEST(ExportTest, CollidingNamesAreDeduplicated) {
  obs::MetricsRegistry reg;
  reg.GetCounter("a.b")->Add(1);
  reg.GetCounter("a_b")->Add(2);
  const std::string text = obs::RenderOpenMetrics(reg.Snap());
  // Registry order is lexicographic: "a.b" sanitizes first and keeps
  // the clean name; "a_b" collides and gets the numbered suffix.
  EXPECT_NE(text.find("# TYPE a_b counter\na_b_total 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE a_b_2 counter\na_b_2_total 2\n"),
            std::string::npos)
      << text;
}

TEST(ExportTest, TracezJsonCarriesFullPath) {
  Tracer tracer;
  tracer.SetSlowThresholdNs(100);
  DescentTrace t = MakeTrace(/*key=*/7, /*start_ns=*/123,
                             /*latency_ns=*/200);
  t.backend = static_cast<uint8_t>(obs::TraceBackend::kSegTree);
  t.found = 1;
  SearchCounters cmps;
  cmps.simd_comparisons = 4;
  cmps.scalar_comparisons = 1;
  obs::AppendTraceLevel(&t, /*node_ref=*/99, obs::kTraceLayoutBreadthFirst,
                        /*arena_slab=*/2, cmps, /*cycles=*/150);
  tracer.Record(t);

  const std::string json = obs::RenderTracezJson(tracer);
  for (const char* needle :
       {"\"key\":7", "\"latency_ns\":200", "\"backend\":\"segtree\"",
        "\"found\":true", "\"slow\":true", "\"node_ref\":99",
        "\"layout\":\"breadth_first\"", "\"arena_slab\":2",
        "\"simd_cmps\":4", "\"scalar_cmps\":1", "\"cycles\":150"}) {
    EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n"
                                                    << json;
  }
  // The slow trace appears in both arrays.
  EXPECT_NE(json.find("\"recent\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slow\":[{"), std::string::npos) << json;
}

// --- end-to-end: traced descent through the wrapper -----------------------

TEST(TraceHookTest, SampledFindRecordsFullDescent) {
  using Tree = segtree::SegTree<uint64_t, uint64_t>;
  SynchronizedIndex<Tree> index;
  for (uint64_t k = 0; k < 50000; ++k) index.Insert(k * 2, k);

  Tracer::Global().Reset();
  obs::EnableTracing(1);
  EXPECT_EQ(index.Find(2468), std::optional<uint64_t>(1234));
  EXPECT_FALSE(index.Find(1).has_value());
  obs::EnableTracing(0);

  const auto traces = Tracer::Global().Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  const DescentTrace& hit = traces[0];
  EXPECT_EQ(hit.key, 2468u);
  EXPECT_EQ(hit.found, 1);
  EXPECT_EQ(hit.backend, static_cast<uint8_t>(obs::TraceBackend::kSegTree));
  ASSERT_GT(hit.levels, 1);  // 50k keys: at least root + leaf
  for (int l = 0; l < hit.levels; ++l) {
    EXPECT_GT(hit.level[l].simd_cmps + hit.level[l].scalar_cmps, 0) << l;
    EXPECT_NE(hit.level[l].node_ref, obs::kTraceNoNodeRef) << l;
  }
  EXPECT_EQ(traces[1].found, 0);
  EXPECT_EQ(traces[1].key, 1u);
}

// --- stats server over a real socket --------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatsServerTest, ServesAllEndpointsOverSocket) {
  obs::MetricsRegistry::Global().GetCounter("trace_test.pings")->Add(3);
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(/*port=*/0)) << server.error();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_NE(health.find("\r\n\r\nok\n"), std::string::npos) << health;

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("trace_test_pings_total 3"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("# EOF\n"), std::string::npos);

  const std::string json = HttpGet(server.port(), "/metrics.json");
  EXPECT_NE(json.find("\"registry\":"), std::string::npos) << json;
  const std::string tracez = HttpGet(server.port(), "/tracez?max=5");
  EXPECT_NE(tracez.find("\"recent\":["), std::string::npos) << tracez;

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(StatsServerTest, HandleRequestRoutesWithoutSocket) {
  EXPECT_NE(obs::StatsServer::HandleRequest("/healthz").find("ok\n"),
            std::string::npos);
  EXPECT_NE(obs::StatsServer::HandleRequest("/metrics").find("# EOF"),
            std::string::npos);
  EXPECT_NE(obs::StatsServer::HandleRequest("/tracez").find("\"slow\":["),
            std::string::npos);
  EXPECT_NE(obs::StatsServer::HandleRequest("/absent").find("404"),
            std::string::npos);
}

}  // namespace
}  // namespace simdtree
