// Linearization tests: the constructive permutation builder must agree
// with the paper's closed-form Formulas 1 and 2, the permutation must be a
// bijection, and truncated storage must reproduce the paper's Table 3.

#include "kary/linearize.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace simdtree::kary {
namespace {

struct ShapeParam {
  int k;
  int r;
};

class LinearizeShapeTest : public testing::TestWithParam<ShapeParam> {};

TEST_P(LinearizeShapeTest, ConstructiveBfMatchesClosedForm) {
  const KaryShape shape = KaryShape::Exact(GetParam().k, GetParam().r);
  const KaryLayout layout(shape, Layout::kBreadthFirst);
  for (int64_t p = 0; p < shape.slots; ++p) {
    EXPECT_EQ(layout.SortedToSlot(p), BfSlotClosedForm(p, shape))
        << "k=" << shape.k << " r=" << shape.r << " p=" << p;
  }
}

TEST_P(LinearizeShapeTest, ConstructiveDfMatchesClosedForm) {
  const KaryShape shape = KaryShape::Exact(GetParam().k, GetParam().r);
  const KaryLayout layout(shape, Layout::kDepthFirst);
  for (int64_t p = 0; p < shape.slots; ++p) {
    EXPECT_EQ(layout.SortedToSlot(p), DfSlotClosedForm(p, shape))
        << "k=" << shape.k << " r=" << shape.r << " p=" << p;
  }
}

TEST_P(LinearizeShapeTest, PermutationIsBijection) {
  const KaryShape shape = KaryShape::Exact(GetParam().k, GetParam().r);
  for (Layout l : {Layout::kBreadthFirst, Layout::kDepthFirst}) {
    const KaryLayout layout(shape, l);
    std::vector<bool> seen(static_cast<size_t>(shape.slots), false);
    for (int64_t s = 0; s < shape.slots; ++s) {
      const int64_t p = layout.SlotToSorted(s);
      ASSERT_GE(p, 0);
      ASSERT_LT(p, shape.slots);
      EXPECT_FALSE(seen[static_cast<size_t>(p)]);
      seen[static_cast<size_t>(p)] = true;
      EXPECT_EQ(layout.SortedToSlot(p), s);
    }
  }
}

TEST_P(LinearizeShapeTest, LinearizeDelinearizeRoundTrips) {
  const KaryShape shape = KaryShape::Exact(GetParam().k, GetParam().r);
  for (Layout l : {Layout::kBreadthFirst, Layout::kDepthFirst}) {
    const KaryLayout layout(shape, l);
    std::vector<int32_t> sorted(static_cast<size_t>(shape.slots));
    std::iota(sorted.begin(), sorted.end(), 100);
    std::vector<int32_t> lin(sorted.size());
    layout.Linearize(sorted.data(), shape.slots, lin.data(), shape.slots,
                     PadValue<int32_t>());
    std::vector<int32_t> back(sorted.size());
    layout.Delinearize(lin.data(), shape.slots, back.data());
    EXPECT_EQ(back, sorted);
  }
}

TEST_P(LinearizeShapeTest, NodesHoldSortedRunsOfSeparators) {
  // Every k-1 consecutive slots form one logical node whose keys must be
  // ascending — the precondition for the switch-point bitmask property.
  const KaryShape shape = KaryShape::Exact(GetParam().k, GetParam().r);
  for (Layout l : {Layout::kBreadthFirst, Layout::kDepthFirst}) {
    const KaryLayout layout(shape, l);
    std::vector<int32_t> sorted(static_cast<size_t>(shape.slots));
    std::iota(sorted.begin(), sorted.end(), 0);
    std::vector<int32_t> lin(sorted.size());
    layout.Linearize(sorted.data(), shape.slots, lin.data(), shape.slots,
                     PadValue<int32_t>());
    const int keys_per_node = shape.k - 1;
    for (int64_t base = 0; base < shape.slots; base += keys_per_node) {
      for (int i = 1; i < keys_per_node; ++i) {
        EXPECT_LT(lin[static_cast<size_t>(base + i - 1)],
                  lin[static_cast<size_t>(base + i)])
            << "layout=" << LayoutName(l) << " node_base=" << base;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearizeShapeTest,
    testing::Values(ShapeParam{3, 1}, ShapeParam{3, 2}, ShapeParam{3, 3},
                    ShapeParam{3, 5}, ShapeParam{5, 1}, ShapeParam{5, 2},
                    ShapeParam{5, 4}, ShapeParam{9, 2}, ShapeParam{9, 3},
                    ShapeParam{17, 1}, ShapeParam{17, 2}, ShapeParam{17, 3}),
    [](const testing::TestParamInfo<ShapeParam>& info) {
      return "k" + std::to_string(info.param.k) + "r" +
             std::to_string(info.param.r);
    });

TEST(KaryShapeTest, ForPicksMinimalHeight) {
  EXPECT_EQ(KaryShape::For(3, 1).r, 1);
  EXPECT_EQ(KaryShape::For(3, 2).r, 1);
  EXPECT_EQ(KaryShape::For(3, 3).r, 2);
  EXPECT_EQ(KaryShape::For(3, 8).r, 2);
  EXPECT_EQ(KaryShape::For(3, 9).r, 3);
  EXPECT_EQ(KaryShape::For(3, 26).r, 3);  // paper's running example
  EXPECT_EQ(KaryShape::For(3, 27).r, 4);
  EXPECT_EQ(KaryShape::For(17, 254).r, 2);   // Table 3, 8-bit row
  EXPECT_EQ(KaryShape::For(9, 404).r, 3);    // Table 3, 16-bit row
  EXPECT_EQ(KaryShape::For(5, 338).r, 4);    // Table 3, 32-bit row
  EXPECT_EQ(KaryShape::For(3, 242).r, 5);    // Table 3, 64-bit row
}

TEST(KaryShapeTest, SlotsAreKToTheRMinusOne) {
  EXPECT_EQ(KaryShape::Exact(3, 3).slots, 26);
  EXPECT_EQ(KaryShape::Exact(17, 2).slots, 288);
  EXPECT_EQ(KaryShape::Exact(9, 3).slots, 728);
  EXPECT_EQ(KaryShape::Exact(5, 4).slots, 624);
  EXPECT_EQ(KaryShape::Exact(3, 5).slots, 242);
}

TEST(TruncatedStorageTest, MatchesPaperTable3WhereItIsRealizable) {
  // Table 3's N_S column: keys materialized in the linearized tree. The
  // paper's 16-/32-bit rows (408/344) round N_L up to a multiple of k-1,
  // which under the perfect-tree permutation is not a searchable prefix
  // (and the printed 32-bit node size is inconsistent with its own N_S:
  // 339*8 + 344*4 = 4088 != 4096). Our node-granular truncation stores the
  // breadth-first prefix up to the last node holding a real key: identical
  // for the 8- and 64-bit rows, slightly larger for 16-/32-bit
  // (440 vs 408, 396 vs 344). See DESIGN.md and EXPERIMENTS.md.
  struct Row {
    int k;
    int64_t n_l;
    int64_t n_s;
  };
  for (const Row& row : {Row{17, 254, 256}, Row{9, 404, 440},
                         Row{5, 338, 396}, Row{3, 242, 242}}) {
    const KaryShape shape = KaryShape::For(row.k, row.n_l);
    const KaryLayout layout(shape, Layout::kBreadthFirst);
    EXPECT_EQ(layout.StoredSlots(row.n_l, Storage::kTruncated), row.n_s)
        << "k=" << row.k << " n=" << row.n_l;
  }
}

TEST(TruncatedStorageTest, EmptyAndSmallCounts) {
  const KaryShape shape = KaryShape::Exact(3, 3);
  const KaryLayout layout(shape, Layout::kBreadthFirst);
  EXPECT_EQ(layout.StoredSlots(0, Storage::kTruncated), 0);
  EXPECT_EQ(layout.StoredSlots(0, Storage::kPerfect), 26);
  EXPECT_EQ(layout.StoredSlots(26, Storage::kTruncated), 26);
  // Stored slot counts are node-granular (multiples of k-1) and
  // monotonically non-decreasing in n.
  int64_t prev = 0;
  for (int64_t n = 1; n <= 26; ++n) {
    const int64_t s = layout.StoredSlots(n, Storage::kTruncated);
    EXPECT_EQ(s % 2, 0);
    EXPECT_GE(s, n);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(LinearizeTest, PaperFigure4Example) {
  // Figure 4/5: n = 26 sorted keys 0..25, k = 3, breadth-first. The root
  // holds keys 8 and 17 and the first level-1 node holds 2 and 5.
  const KaryShape shape = KaryShape::For(3, 26);
  const KaryLayout layout(shape, Layout::kBreadthFirst);
  std::vector<int32_t> sorted(26);
  std::iota(sorted.begin(), sorted.end(), 0);
  std::vector<int32_t> lin(26);
  layout.Linearize(sorted.data(), 26, lin.data(), 26, PadValue<int32_t>());
  EXPECT_EQ(lin[0], 8);
  EXPECT_EQ(lin[1], 17);
  EXPECT_EQ(lin[2], 2);
  EXPECT_EQ(lin[3], 5);
  EXPECT_EQ(lin[4], 11);
  EXPECT_EQ(lin[5], 14);
  EXPECT_EQ(lin[6], 20);
  EXPECT_EQ(lin[7], 23);
}

TEST(LinearizeTest, PadsFillSlotsBeyondN) {
  const KaryShape shape = KaryShape::For(3, 11);  // Figure 7: 11 keys
  const KaryLayout layout(shape, Layout::kBreadthFirst);
  std::vector<int16_t> sorted(11);
  std::iota(sorted.begin(), sorted.end(), 1);
  const int64_t stored = layout.StoredSlots(11, Storage::kTruncated);
  std::vector<int16_t> lin(static_cast<size_t>(stored));
  layout.Linearize(sorted.data(), 11, lin.data(), stored,
                   PadValue<int16_t>());
  int pads = 0;
  for (int64_t s = 0; s < stored; ++s) {
    if (layout.SlotToSorted(s) >= 11) {
      EXPECT_EQ(lin[static_cast<size_t>(s)], PadValue<int16_t>());
      ++pads;
    }
  }
  EXPECT_EQ(pads, stored - 11);
  EXPECT_GT(pads, 0);
}

}  // namespace
}  // namespace simdtree::kary
