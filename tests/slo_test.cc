// SLO burn-rate tests (obs/slo.h): the pure EvaluateSlo arithmetic
// (budget normalization, zero-budget edge, racy-snapshot clamps), the
// LogHistogram::CountBelow primitive the monitor is built on, and the
// SloMonitor's windowed ticks over the net.* serving metrics.

#include "obs/slo.h"

#include <cmath>
#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "obs/histogram.h"
#include "obs/metrics.h"

namespace simdtree::obs {
namespace {

TEST(EvaluateSloTest, EmptyWindowIsInvalid) {
  const SloReport r = EvaluateSlo(SloConfig{}, SloWindowDelta{});
  EXPECT_FALSE(r.valid);
  EXPECT_EQ(r.max_burn(), 0.0);
}

TEST(EvaluateSloTest, AvailabilityBurnNormalizesToBudget) {
  SloConfig cfg;
  cfg.availability_target = 0.999;  // budget: 0.1% errors
  SloWindowDelta d;
  d.requests = 1000;
  d.errors = 5;  // 0.5% observed -> burning 5x the budget
  const SloReport r = EvaluateSlo(cfg, d);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.availability, 0.995, 1e-12);
  EXPECT_NEAR(r.availability_burn, 5.0, 1e-9);
  EXPECT_NEAR(r.max_burn(), 5.0, 1e-9);
}

TEST(EvaluateSloTest, LatencyBurnNormalizesToBudget) {
  SloConfig cfg;
  cfg.latency_target = 0.99;  // budget: 1% over-threshold
  SloWindowDelta d;
  d.requests = 1000;
  d.latency_samples = 1000;
  d.under_threshold = 980;  // 2% misses -> 2x burn
  const SloReport r = EvaluateSlo(cfg, d);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.latency_ok_fraction, 0.98, 1e-12);
  EXPECT_NEAR(r.latency_burn, 2.0, 1e-9);
}

TEST(EvaluateSloTest, BurnExactlyOneAtBudgetBoundary) {
  SloConfig cfg;
  cfg.availability_target = 0.99;
  SloWindowDelta d;
  d.requests = 1000;
  d.errors = 10;  // exactly the 1% budget
  EXPECT_NEAR(EvaluateSlo(cfg, d).availability_burn, 1.0, 1e-9);
}

TEST(EvaluateSloTest, ZeroBudgetBurnsZeroOrInfinity) {
  SloConfig cfg;
  cfg.availability_target = 1.0;  // no error budget at all
  SloWindowDelta clean;
  clean.requests = 1000;
  EXPECT_EQ(EvaluateSlo(cfg, clean).availability_burn, 0.0);

  SloWindowDelta dirty = clean;
  dirty.errors = 1;
  EXPECT_TRUE(std::isinf(EvaluateSlo(cfg, dirty).availability_burn));
  EXPECT_TRUE(std::isinf(EvaluateSlo(cfg, dirty).max_burn()));
}

TEST(EvaluateSloTest, RacySnapshotsAreClamped) {
  SloConfig cfg;
  SloWindowDelta d;
  d.requests = 100;
  d.errors = 150;  // cumulative-counter race: more errors than requests
  const SloReport r = EvaluateSlo(cfg, d);
  EXPECT_EQ(r.availability, 0.0);  // clamped, not negative

  SloWindowDelta d2;
  d2.requests = 100;
  d2.latency_samples = 100;
  d2.under_threshold = 120;  // race the other way
  const SloReport r2 = EvaluateSlo(cfg, d2);
  EXPECT_EQ(r2.latency_ok_fraction, 1.0);
  EXPECT_EQ(r2.latency_burn, 0.0);
}

TEST(CountBelowTest, CountsSamplesAtOrUnderThreshold) {
  LogHistogram h;
  for (uint64_t v : {10u, 100u, 1000u, 10000u, 100000u}) h.Record(v);
  EXPECT_EQ(h.CountBelow(0), 0u);
  // Bucket quantization may round the boundary up, never down past a
  // bucket edge — a generous threshold must count everything below it.
  EXPECT_EQ(h.CountBelow(1'000'000), 5u);
  EXPECT_GE(h.CountBelow(10000), 3u);
  EXPECT_LE(h.CountBelow(50), h.CountBelow(5000));
}

TEST(CountBelowTest, LastBucketAndSaturation) {
  LogHistogram h;
  h.Record(~0ULL);  // saturates into the final bucket
  EXPECT_EQ(h.CountBelow(~0ULL), 1u);
  EXPECT_EQ(h.CountBelow(1), 0u);
}

TEST(SloMonitorTest, TicksProduceWindowedReportAndGauges) {
  auto& monitor = SloMonitor::Global();
  monitor.Reset();
  SloConfig cfg;
  cfg.latency_threshold_ns = 1'000'000;
  cfg.window_s = 3600.0;  // never trimmed during the test
  monitor.Configure(cfg);

  // First tick: baseline snapshot, no delta yet.
  monitor.Tick();
  EXPECT_FALSE(monitor.Report().valid);

  // Traffic between ticks: 200 requests, all fast.
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("net.requests")->Add(200);
  auto* hist = reg.GetHistogram("net.op_get_ns");
  for (int i = 0; i < 200; ++i) hist->Record(50'000);  // 50 us
  monitor.Tick();

  const SloReport r = monitor.Report();
  ASSERT_TRUE(r.valid);
  EXPECT_GE(r.requests, 200u);
  EXPECT_EQ(r.availability_burn, 0.0);
  EXPECT_NEAR(r.latency_ok_fraction, 1.0, 1e-9);
  EXPECT_EQ(r.latency_burn, 0.0);

  // The slo.* gauges mirror the report after a tick.
  EXPECT_NEAR(reg.GetGauge("slo.availability")->Get(), r.availability,
              1e-12);
  EXPECT_GE(reg.GetGauge("slo.window_requests")->Get(), 200.0);

  const std::string json = monitor.ToJson();
  EXPECT_NE(json.find("\"valid\":true"), std::string::npos);
  EXPECT_NE(json.find("\"availability_burn_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"max_burn\""), std::string::npos);
  monitor.Reset();
}

TEST(SloMonitorTest, BreachIsVisibleInBurnRate) {
  auto& monitor = SloMonitor::Global();
  monitor.Reset();
  SloConfig cfg;
  cfg.latency_threshold_ns = 1'000'000;  // 1 ms objective
  cfg.latency_target = 0.99;
  cfg.window_s = 3600.0;
  monitor.Configure(cfg);
  monitor.Tick();

  // 100 requests, 10% of them blowing the latency objective: a 10x
  // burn against the 1% budget.
  auto& reg = MetricsRegistry::Global();
  reg.GetCounter("net.requests")->Add(100);
  auto* hist = reg.GetHistogram("net.op_get_ns");
  for (int i = 0; i < 90; ++i) hist->Record(100'000);
  for (int i = 0; i < 10; ++i) hist->Record(50'000'000);
  monitor.Tick();

  const SloReport r = monitor.Report();
  ASSERT_TRUE(r.valid);
  EXPECT_GT(r.latency_burn, 5.0);
  EXPECT_GT(r.max_burn(), 1.0);  // the bb_serve --slo-target gate fires
  monitor.Reset();
}

TEST(SloMonitorTest, ConfigureClearsStaleWindow) {
  auto& monitor = SloMonitor::Global();
  monitor.Reset();
  SloConfig cfg;
  cfg.window_s = 3600.0;
  monitor.Configure(cfg);
  monitor.Tick();
  MetricsRegistry::Global().GetCounter("net.requests")->Add(10);
  monitor.Tick();
  ASSERT_TRUE(monitor.Report().valid);

  // A threshold change invalidates accumulated under-threshold counts;
  // the ring restarts.
  cfg.latency_threshold_ns = 123;
  monitor.Configure(cfg);
  EXPECT_FALSE(monitor.Report().valid);
  monitor.Reset();
}

}  // namespace
}  // namespace simdtree::obs
