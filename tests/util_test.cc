// Tests for the utility layer: RNG determinism, statistics, workload
// generators, timer sanity, and table formatting.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "util/cycle_timer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table_printer.h"
#include "util/workload.h"

namespace simdtree {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42), c(43);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    any_diff |= (va != c.Next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StatsTest, SummarizeBasics) {
  const SampleSummary s = Summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(StatsTest, EmptyAndSingle) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const SampleSummary s = Summarize({7.0});
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 7.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> sorted = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 1.0), 10.0);
}

TEST(StatsTest, PercentileEmptyAndClamped) {
  EXPECT_DOUBLE_EQ(PercentileSorted({}, 0.5), 0.0);
  const std::vector<double> sorted = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, -1.0), 1.0);  // clamped to 0
  EXPECT_DOUBLE_EQ(PercentileSorted(sorted, 2.0), 3.0);   // clamped to 1
}

TEST(StatsTest, TailPercentiles) {
  // 0..999: rank-interpolated p99 = 989.01, p99.9 = 998.001.
  std::vector<double> samples(1000);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i] = static_cast<double>(i);
  }
  const SampleSummary s = Summarize(samples);
  EXPECT_NEAR(s.p99, 989.01, 1e-9);
  EXPECT_NEAR(s.p999, 998.001, 1e-9);
  EXPECT_GE(s.p999, s.p99);
  EXPECT_GE(s.p99, s.p95);
  EXPECT_LE(s.p999, s.max);

  // Degenerate inputs stay safe: empty summary reports zero tails.
  EXPECT_DOUBLE_EQ(Summarize({}).p99, 0.0);
  EXPECT_DOUBLE_EQ(Summarize({}).p999, 0.0);
  EXPECT_DOUBLE_EQ(Summarize({7.0}).p999, 7.0);
}

TEST(WorkloadTest, AscendingKeys) {
  const auto keys = AscendingKeys<int32_t>(5, 10);
  EXPECT_EQ(keys, (std::vector<int32_t>{10, 11, 12, 13, 14}));
}

TEST(WorkloadTest, FullDomainCoversEverything8Bit) {
  const auto keys = FullDomainKeys<uint8_t>();
  ASSERT_EQ(keys.size(), 256u);
  EXPECT_EQ(keys.front(), 0);
  EXPECT_EQ(keys.back(), 255);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  const auto signed_keys = FullDomainKeys<int8_t>();
  ASSERT_EQ(signed_keys.size(), 256u);
  EXPECT_EQ(signed_keys.front(), -128);
  EXPECT_EQ(signed_keys.back(), 127);
}

TEST(WorkloadTest, CycledDomainSortedWithEvenDuplication) {
  const auto keys = CycledDomainKeys<uint8_t>(1000);
  EXPECT_EQ(keys.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  // 1000 = 256*3 + 232: values 0..231 appear 4x, the rest 3x.
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 0), 4);
  EXPECT_EQ(std::count(keys.begin(), keys.end(), 255), 3);
}

TEST(WorkloadTest, UniformDistinctKeysAreDistinctSorted) {
  Rng rng(3);
  const auto keys = UniformDistinctKeys<uint16_t>(5000, rng);
  EXPECT_EQ(keys.size(), 5000u);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(WorkloadTest, MixedRadixKeysFillExactDepth) {
  const auto keys = MixedRadixKeys(3, 4);
  EXPECT_EQ(keys.size(), 64u);  // 4^3
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
  // Bytes beyond the 3 low-order ones are zero; each used byte takes 4
  // distinct values.
  std::set<uint8_t> byte_values[3];
  for (uint64_t k : keys) {
    EXPECT_EQ(k >> 24, 0u);
    for (int b = 0; b < 3; ++b) {
      byte_values[b].insert(static_cast<uint8_t>(k >> (8 * b)));
    }
  }
  for (int b = 0; b < 3; ++b) EXPECT_EQ(byte_values[b].size(), 4u);
}

TEST(WorkloadTest, MixedRadixDepthOne) {
  const auto keys = MixedRadixKeys(1, 16);
  EXPECT_EQ(keys.size(), 16u);
  EXPECT_EQ(keys.front(), 0u);
  EXPECT_EQ(keys.back(), 15u);
}

TEST(WorkloadTest, SamplePresentProbesDrawsFromKeys) {
  Rng rng(8);
  const std::vector<int32_t> keys = {5, 6, 7};
  const auto probes = SamplePresentProbes(keys, 100, rng);
  EXPECT_EQ(probes.size(), 100u);
  for (int32_t p : probes) {
    EXPECT_TRUE(p >= 5 && p <= 7);
  }
}

TEST(WorkloadTest, MixedProbesRespectsHitFraction) {
  Rng rng(9);
  std::vector<int64_t> keys(1000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<int64_t>(i) * 1000;
  }
  const auto probes = MixedProbes(keys, 2000, 0.5, rng);
  size_t hits = 0;
  for (int64_t p : probes) {
    hits += std::binary_search(keys.begin(), keys.end(), p) ? 1u : 0u;
  }
  EXPECT_GT(hits, 800u);
  EXPECT_LT(hits, 1200u);
}

TEST(CycleTimerTest, MonotonicAndCalibrated) {
  const uint64_t a = CycleTimer::Now();
  const uint64_t b = CycleTimer::Now();
  EXPECT_GE(b, a);
  EXPECT_GT(CycleTimer::CyclesPerSecond(), 1e6);  // any real CPU
  EXPECT_GT(CycleTimer::ToNanoseconds(1000), 0.0);
}

TEST(TablePrinterTest, FormatsAlignedRows) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "12345"});
  // Smoke test: must not crash and formatting helpers behave.
  t.Print(stderr);
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(uint64_t{42}), "42");
  EXPECT_EQ(TablePrinter::Fmt(int64_t{-7}), "-7");
}

}  // namespace
}  // namespace simdtree
