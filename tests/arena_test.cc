// Unit tests for the arena memory subsystem (mem/arena.h) and its
// integration with the tree backends: slab growth, free-list reuse after
// insert/erase churn, 32-bit reference exhaustion, O(1) Clear via slab
// reset (zero per-node frees on the arena path), and serialize →
// deserialize into a fresh arena.
//
// The pools sample SIMDTREE_DISABLE_ARENA at construction, so the
// arena-mode-specific assertions guard on arena_mode() — the whole
// binary stays meaningful when CI runs it with the arena disabled.

#include "mem/arena.h"

#include <algorithm>
#include <cstdint>
#include <new>
#include <set>
#include <vector>

#include "btree/btree.h"
#include "core/serialize.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

using mem::ArenaStats;
using mem::NodePool;

TEST(NodePoolTest, GrowsAcrossMultipleSlabs) {
  NodePool pool(/*block_bytes=*/256, /*slab_bytes=*/4096);
  std::vector<uint32_t> slots;
  std::vector<void*> blocks;
  for (int i = 0; i < 200; ++i) {
    uint32_t slot = 0;
    void* p = pool.Alloc(&slot);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % mem::kCacheLine, 0u);
    EXPECT_EQ(pool.Decode(slot), p);
    slots.push_back(slot);
    blocks.push_back(p);
  }
  EXPECT_EQ(std::set<void*>(blocks.begin(), blocks.end()).size(),
            blocks.size());
  const ArenaStats s = pool.Stats();
  EXPECT_EQ(s.allocs, 200u);
  EXPECT_EQ(s.live_blocks, 200u);
  EXPECT_GE(s.used_bytes, 200u * 256u);
  EXPECT_LE(s.used_bytes, s.reserved_bytes);
  if (s.arena_mode) {
    // 200 x 256B blocks cannot fit one 4 KiB slab: growth must have
    // happened, and slots must still decode across the slab boundary.
    EXPECT_GT(s.slab_count, 1u);
  }
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(pool.Decode(slots[i]), blocks[i]);
  }
}

TEST(NodePoolTest, FreeListReusesSlots) {
  NodePool pool(/*block_bytes=*/128, /*slab_bytes=*/4096);
  std::vector<uint32_t> slots(64);
  for (auto& slot : slots) ASSERT_NE(pool.Alloc(&slot), nullptr);
  const size_t reserved_before = pool.Stats().reserved_bytes;
  for (int i = 0; i < 16; ++i) {
    pool.Free(pool.Decode(slots[static_cast<size_t>(i)]),
              slots[static_cast<size_t>(i)]);
  }
  if (pool.arena_mode()) {
    EXPECT_EQ(pool.Stats().free_list_blocks, 16u);
  }
  EXPECT_EQ(pool.Stats().live_blocks, 48u);
  // Churn reuse: the next allocations must come from the free list (no
  // new slab, same reserved bytes in arena mode).
  std::set<uint32_t> freed(slots.begin(), slots.begin() + 16);
  for (int i = 0; i < 16; ++i) {
    uint32_t slot = 0;
    ASSERT_NE(pool.Alloc(&slot), nullptr);
    EXPECT_EQ(freed.count(slot), 1u) << "slot " << slot << " not reused";
  }
  EXPECT_EQ(pool.Stats().free_list_blocks, 0u);
  EXPECT_EQ(pool.Stats().live_blocks, 64u);
  if (pool.arena_mode()) {
    EXPECT_EQ(pool.Stats().reserved_bytes, reserved_before);
  }
}

TEST(NodePoolTest, SlotSpaceExhaustionReturnsNull) {
  // 4 slot bits: at most 16 encodable blocks (fewer in arena mode, where
  // the second slab's base slot already falls outside the cap).
  NodePool pool(/*block_bytes=*/64, /*slab_bytes=*/4096,
                /*max_slot_bits=*/4);
  int got = 0;
  for (int i = 0; i < 64; ++i) {
    uint32_t slot = 0;
    if (pool.Alloc(&slot) == nullptr) break;
    EXPECT_LT(slot, 16u);
    ++got;
  }
  EXPECT_GT(got, 0);
  EXPECT_LE(got, 16);
  uint32_t slot = 0;
  EXPECT_EQ(pool.Alloc(&slot), nullptr);  // stays exhausted
}

TEST(NodePoolTest, ResetReleasesSlabsAndRestartsGrowth) {
  NodePool pool(/*block_bytes=*/256, /*slab_bytes=*/4096);
  uint32_t slot = 0;
  for (int i = 0; i < 100; ++i) ASSERT_NE(pool.Alloc(&slot), nullptr);
  pool.Reset();
  const ArenaStats s = pool.Stats();
  EXPECT_EQ(s.live_blocks, 0u);
  EXPECT_EQ(s.slab_count, 0u);
  EXPECT_EQ(s.reserved_bytes, 0u);
  EXPECT_EQ(s.resets, 1u);
  ASSERT_NE(pool.Alloc(&slot), nullptr);  // pool is reusable after Reset
  EXPECT_EQ(pool.Stats().live_blocks, 1u);
}

TEST(ByteArenaTest, SizeClassFreeListReuse) {
  mem::ByteArena arena(/*slab_bytes=*/4096);
  void* a = arena.Alloc(100, 16);
  ASSERT_NE(a, nullptr);
  arena.Free(a, 100, 16);
  if (arena.arena_mode()) {
    EXPECT_EQ(arena.Stats().free_list_blocks, 1u);
    // Same size class (128B) must requeue the freed block exactly.
    void* b = arena.Alloc(120, 16);
    EXPECT_EQ(b, a);
    arena.Free(b, 120, 16);
  }
  EXPECT_EQ(arena.Stats().live_blocks, 0u);
  EXPECT_EQ(arena.Stats().allocs, arena.Stats().frees);
}

// --- tree integration -------------------------------------------------------

using Tree = btree::BPlusTree<uint64_t, uint64_t>;

Tree::Config SmallArenaConfig(int64_t capacity, uint32_t max_slot_bits = 31) {
  Tree::Config config = Tree::MakeConfig(capacity);
  config.arena.slab_bytes = 4096;  // force multi-slab growth cheaply
  config.arena.max_slot_bits = max_slot_bits;
  return config;
}

TEST(ArenaTreeTest, TreeGrowsAcrossSlabsAndValidates) {
  Tree tree(SmallArenaConfig(16));
  Rng rng(41);
  const std::vector<uint64_t> keys = UniformDistinctKeys<uint64_t>(5000, rng);
  for (const uint64_t k : keys) tree.Insert(k, k * 3);
  ASSERT_TRUE(tree.Validate());
  const ArenaStats s = tree.MemStats();
  EXPECT_GT(s.live_blocks, 300u);  // ~5000 keys / 16-key leaves
  EXPECT_GT(s.used_bytes, 0u);
  EXPECT_LE(s.used_bytes, s.reserved_bytes);
  if (s.arena_mode) EXPECT_GT(s.slab_count, 2u);
  for (const uint64_t k : keys) {
    auto v = tree.Find(k);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, k * 3);
  }
}

TEST(ArenaTreeTest, EraseInsertChurnReusesFreedNodes) {
  Tree tree(SmallArenaConfig(16));
  Rng rng(43);
  const std::vector<uint64_t> keys = UniformDistinctKeys<uint64_t>(4000, rng);
  for (const uint64_t k : keys) tree.Insert(k, k);
  const size_t reserved_after_build = tree.MemStats().reserved_bytes;
  // Erase half (merges free nodes onto the pool free lists), reinsert.
  for (size_t i = 0; i < keys.size(); i += 2) ASSERT_TRUE(tree.Erase(keys[i]));
  const ArenaStats mid = tree.MemStats();
  EXPECT_GT(mid.frees, 0u);
  if (mid.arena_mode) EXPECT_GT(mid.free_list_blocks, 0u);
  for (size_t i = 0; i < keys.size(); i += 2) {
    tree.Insert(keys[i], keys[i]);
  }
  ASSERT_TRUE(tree.Validate());
  EXPECT_EQ(tree.size(), keys.size());
  if (mid.arena_mode) {
    // The reinserted nodes came from the free lists, not new slabs.
    EXPECT_EQ(tree.MemStats().reserved_bytes, reserved_after_build);
  }
}

// Satellite of the O(1)-teardown contract: Clear() on the arena path
// releases slabs wholesale and performs ZERO per-node frees.
TEST(ArenaTreeTest, ClearIsSlabResetWithZeroPerNodeFrees) {
  Tree tree(SmallArenaConfig(16));
  for (uint64_t k = 0; k < 3000; ++k) tree.Insert(k, k);
  const ArenaStats before = tree.MemStats();
  EXPECT_GT(before.live_blocks, 0u);
  tree.Clear();
  const ArenaStats after = tree.MemStats();
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(after.live_blocks, 0u);
  // Both pools (leaf + inner) reset once each.
  EXPECT_EQ(after.resets, before.resets + 2);
  if (after.arena_mode) {
    EXPECT_EQ(after.frees, before.frees) << "Clear must not free per node";
    EXPECT_EQ(after.slab_count, 0u);
  }
  // The tree is fully usable after the wholesale release.
  for (uint64_t k = 0; k < 100; ++k) tree.Insert(k, k + 1);
  ASSERT_TRUE(tree.Validate());
  EXPECT_EQ(*tree.Find(7), 8u);
}

TEST(ArenaTreeTest, RefExhaustionThrowsBadAlloc) {
  // 6 slot bits: the node pools run out of encodable references long
  // before 100k keys; Insert must surface that as std::bad_alloc and the
  // already-inserted prefix must stay intact.
  Tree tree(SmallArenaConfig(8, /*max_slot_bits=*/6));
  bool threw = false;
  uint64_t inserted = 0;
  for (uint64_t k = 0; k < 100000; ++k) {
    try {
      tree.Insert(k, k);
      ++inserted;
    } catch (const std::bad_alloc&) {
      threw = true;
      break;
    }
  }
  EXPECT_TRUE(threw);
  EXPECT_GT(inserted, 0u);
  for (uint64_t k = 0; k + 8 < inserted; ++k) {
    ASSERT_TRUE(tree.Contains(k)) << k;
  }
}

TEST(ArenaTreeTest, SerializeRoundTripIntoFreshArena) {
  using Seg = segtree::SegTree<uint32_t, uint64_t>;
  Rng rng(47);
  std::vector<uint32_t> keys = UniformDistinctKeys<uint32_t>(20000, rng);
  std::sort(keys.begin(), keys.end());
  std::vector<uint64_t> values;
  values.reserve(keys.size());
  for (const uint32_t k : keys) values.push_back(uint64_t{k} * 7);
  Seg original = Seg::BulkLoad(keys.data(), values.data(), keys.size());

  const std::vector<uint8_t> blob =
      io::Serialize<uint32_t, uint64_t>(original, 64);
  auto loaded = io::LoadTree<Seg>(blob.data(), blob.size());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->Validate());
  EXPECT_EQ(loaded->size(), original.size());
  // The rebuilt tree lives entirely in its own fresh arena: the blob
  // carries logical content only, never slots or slab addresses.
  const ArenaStats s = loaded->MemStats();
  EXPECT_GT(s.allocs, 0u);
  EXPECT_EQ(s.live_blocks, s.allocs - s.frees);
  for (size_t i = 0; i < keys.size(); i += 37) {
    auto v = loaded->Find(keys[i]);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, uint64_t{keys[i]} * 7);
  }
}

TEST(ArenaTrieTest, TrieClearResetsByteArena) {
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> trie;
  for (uint64_t k = 0; k < 20000; ++k) ASSERT_TRUE(trie.Insert(k, k));
  const ArenaStats before = trie.MemStats();
  EXPECT_GT(before.allocs, 0u);
  if (before.arena_mode) EXPECT_GT(before.slab_count, 0u);
  trie.Clear();
  EXPECT_EQ(trie.size(), 0u);
  const ArenaStats after = trie.MemStats();
  if (after.arena_mode) {
    EXPECT_GT(after.resets, before.resets);
    EXPECT_EQ(after.frees, before.frees) << "Clear must not free per node";
  }
  for (uint64_t k = 0; k < 500; ++k) ASSERT_TRUE(trie.Insert(k, k * 2));
  ASSERT_TRUE(trie.Validate());
  EXPECT_EQ(*trie.Find(11), 22u);
}

}  // namespace
}  // namespace simdtree
