// StatsServer robustness tests (obs/stats_server.h): raw-socket abuse
// beyond the happy-path scrape that trace_test covers — malformed
// request lines, oversized headers, unknown routes, non-GET methods,
// the configurable bind address, and a slow client racing Stop().

#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace simdtree {
namespace {

// Opens a loopback connection to `port`; returns the fd or -1.
int ConnectTo(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends `request` verbatim and returns everything the server replies.
std::string RawExchange(uint16_t port, const std::string& request) {
  const int fd = ConnectTo(port);
  if (fd < 0) return "";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(StatsServerTest, MalformedRequestLineGets400) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0)) << server.error();

  // No spaces at all: not even a method token.
  EXPECT_NE(RawExchange(server.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
  // A method that is not GET.
  EXPECT_NE(RawExchange(server.port(),
                        "POST /metrics HTTP/1.1\r\n\r\n")
                .find("400"),
            std::string::npos);
  // Empty request (peer writes nothing and shuts down).
  EXPECT_NE(RawExchange(server.port(), "").find("400"), std::string::npos);

  // The server survives all of it and still serves.
  const std::string ok =
      RawExchange(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok.find("200"), std::string::npos);
  server.Stop();
}

TEST(StatsServerTest, OversizedHeadersAreBounded) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0)) << server.error();

  // Headers way past the 16 KiB read cap: the server must stop reading
  // and answer (the request line itself is valid), not buffer forever.
  std::string req = "GET /healthz HTTP/1.1\r\n";
  req.append(64 * 1024, 'x');  // one endless pseudo-header, no terminator
  const std::string resp = RawExchange(server.port(), req);
  EXPECT_NE(resp.find("HTTP/1.1"), std::string::npos);

  // And the next scrape still works.
  EXPECT_NE(RawExchange(server.port(), "GET /metrics HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  server.Stop();
}

TEST(StatsServerTest, UnknownRouteGets404) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0)) << server.error();
  const std::string resp =
      RawExchange(server.port(), "GET /nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(resp.find("404"), std::string::npos);
  EXPECT_NE(resp.find("not found"), std::string::npos);
  server.Stop();
}

TEST(StatsServerTest, ExplicitBindAddressWorks) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0, "0.0.0.0")) << server.error();
  // Wildcard bind is reachable over loopback.
  EXPECT_NE(RawExchange(server.port(), "GET /healthz HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  server.Stop();

  // A non-address must fail fast with a clear error, not bind garbage.
  obs::StatsServer bad;
  EXPECT_FALSE(bad.Start(0, "not-an-address"));
  EXPECT_NE(bad.error().find("invalid bind address"), std::string::npos);
}

TEST(StatsServerTest, SlowClientDoesNotWedgeStop) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0)) << server.error();

  // A client that connects, dribbles half a request, and stalls. The
  // acceptor's receive timeout must bound it so Stop() completes.
  const int fd = ConnectTo(server.port());
  ASSERT_GE(fd, 0);
  const char half[] = "GET /met";
  ASSERT_GT(::send(fd, half, sizeof(half) - 1, 0), 0);

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto t0 = std::chrono::steady_clock::now();
  server.Stop();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  // The acceptor's per-connection SO_RCVTIMEO is 2 s; Stop() must not
  // take more than one stalled request beyond that.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed)
                .count(),
            5);
  EXPECT_FALSE(server.running());
  ::close(fd);
}

TEST(StatsServerTest, StopIsIdempotentAndRestartable) {
  obs::StatsServer server;
  ASSERT_TRUE(server.Start(0)) << server.error();
  const uint16_t first_port = server.port();
  ASSERT_GT(first_port, 0);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.port(), 0);

  ASSERT_TRUE(server.Start(0)) << server.error();
  EXPECT_NE(RawExchange(server.port(), "GET /healthz HTTP/1.1\r\n\r\n")
                .find("200"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace simdtree
