// 128-bit keys in the Seg-Trie: 16 levels of 8-bit segments. Exercises
// the trie's fixed-height machinery beyond the paper's 64-bit evaluation
// (the trie definition in Section 4 is width-generic).

#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"

#if defined(__SIZEOF_INT128__)

namespace simdtree::segtrie {
namespace {

using U128 = unsigned __int128;
using Trie128 = SegTrie<U128, uint64_t>;
using OptTrie128 = OptimizedSegTrie<U128, uint64_t>;

U128 Make128(uint64_t hi, uint64_t lo) {
  return (static_cast<U128>(hi) << 64) | lo;
}

TEST(Int128TrieTest, SixteenLevels) {
  EXPECT_EQ(Trie128::max_levels(), 16);
  EXPECT_EQ(Trie128::kDomain, 256);
}

TEST(Int128TrieTest, BasicLifecycle) {
  Trie128 trie;
  const U128 a = Make128(0xDEADBEEF12345678ULL, 0x0123456789ABCDEFULL);
  const U128 b = a + 1;
  EXPECT_TRUE(trie.Insert(a, 1));
  EXPECT_TRUE(trie.Insert(b, 2));
  EXPECT_FALSE(trie.Insert(a, 3));  // overwrite
  EXPECT_EQ(trie.size(), 2u);
  ASSERT_TRUE(trie.Validate());
  EXPECT_EQ(trie.Find(a).value(), 3u);
  EXPECT_EQ(trie.Find(b).value(), 2u);
  EXPECT_FALSE(trie.Contains(a - 1));
  EXPECT_TRUE(trie.Erase(a));
  EXPECT_FALSE(trie.Contains(a));
  EXPECT_TRUE(trie.Contains(b));
}

TEST(Int128TrieTest, RandomModel) {
  Trie128 trie;
  std::map<U128, uint64_t> model;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    // Keys spread across both halves.
    const U128 k = Make128(rng.NextBounded(16), rng.Next() & 0xFFFF);
    if (rng.NextBounded(100) < 70) {
      trie.Insert(k, static_cast<uint64_t>(i));
      model[k] = static_cast<uint64_t>(i);
    } else {
      ASSERT_EQ(trie.Erase(k), model.erase(k) > 0);
    }
  }
  ASSERT_TRUE(trie.Validate());
  ASSERT_EQ(trie.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(trie.Find(k).value(), v);
  }
  // Ordered traversal matches the map.
  std::vector<U128> seen;
  trie.ForEach([&](U128 k, const uint64_t&) { seen.push_back(k); });
  auto it = model.begin();
  for (U128 k : seen) {
    ASSERT_TRUE(it != model.end());
    ASSERT_TRUE(k == it->first);
    ++it;
  }
}

TEST(Int128TrieTest, LazyExpansionOverWideKeys) {
  OptTrie128 trie;
  trie.Insert(5, 1);
  EXPECT_EQ(trie.active_levels(), 1);
  trie.Insert(Make128(1, 0), 2);  // diverges at the 9th byte from the top
  EXPECT_EQ(trie.active_levels(), 9);
  EXPECT_TRUE(trie.Contains(5));
  EXPECT_TRUE(trie.Contains(Make128(1, 0)));
  EXPECT_FALSE(trie.Contains(Make128(1, 1)));
  ASSERT_TRUE(trie.Validate());
}

TEST(Int128TrieTest, RangeScan) {
  Trie128 trie;
  for (uint64_t i = 0; i < 1000; ++i) {
    trie.Insert(Make128(1, i * 3), i);
  }
  size_t count = 0;
  trie.ScanRange(Make128(1, 30), Make128(1, 60),
                 [&](U128, const uint64_t&) { ++count; });
  EXPECT_EQ(count, 10u);  // 30, 33, ..., 57
  EXPECT_EQ(trie.CountRange(0, ~U128{0}, /*hi_inclusive=*/true), 1000u);
}

TEST(Int128TrieTest, BulkLoadMatchesInserts) {
  std::vector<U128> keys;
  std::vector<uint64_t> values;
  for (uint64_t i = 0; i < 5000; ++i) {
    keys.push_back(Make128(i / 100, i * 7));
    values.push_back(i);
  }
  auto bulk = Trie128::BulkLoad(keys.data(), values.data(), keys.size());
  ASSERT_TRUE(bulk.Validate());
  ASSERT_EQ(bulk.size(), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(bulk.Find(keys[i]).value(), values[i]);
  }
}

}  // namespace
}  // namespace simdtree::segtrie

#else
TEST(Int128TrieTest, Unsupported) { GTEST_SKIP() << "no __int128"; }
#endif  // __SIZEOF_INT128__
