// KaryArray: the standalone linearized dictionary.

#include "kary/kary_array.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree::kary {
namespace {

TEST(KaryArrayTest, EmptyArray) {
  KaryArray<int32_t> arr({}, Layout::kBreadthFirst);
  EXPECT_EQ(arr.size(), 0);
  EXPECT_EQ(arr.UpperBound(5), 0);
  EXPECT_FALSE(arr.Contains(5));
}

TEST(KaryArrayTest, SingleKey) {
  KaryArray<int32_t> arr({7}, Layout::kBreadthFirst);
  EXPECT_EQ(arr.UpperBound(6), 0);
  EXPECT_EQ(arr.UpperBound(7), 1);
  EXPECT_TRUE(arr.Contains(7));
  EXPECT_FALSE(arr.Contains(8));
}

TEST(KaryArrayTest, DepthFirstForcesPerfectStorage) {
  std::vector<int16_t> keys(100);
  for (int i = 0; i < 100; ++i) keys[static_cast<size_t>(i)] = static_cast<int16_t>(i * 3);
  KaryArray<int16_t> arr(keys, Layout::kDepthFirst, Storage::kTruncated);
  // 16-bit keys: k = 9; 100 keys need r = 3 => 728 perfect slots.
  EXPECT_EQ(arr.stored_slots(), 728);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(arr.Contains(static_cast<int16_t>(i * 3)));
    EXPECT_FALSE(arr.Contains(static_cast<int16_t>(i * 3 + 1)));
  }
}

TEST(KaryArrayTest, TruncatedUsesFewerSlots) {
  std::vector<uint8_t> keys(200);
  for (int i = 0; i < 200; ++i) keys[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  KaryArray<uint8_t> truncated(keys, Layout::kBreadthFirst,
                               Storage::kTruncated);
  KaryArray<uint8_t> perfect(keys, Layout::kBreadthFirst, Storage::kPerfect);
  EXPECT_LT(truncated.stored_slots(), perfect.stored_slots());
  EXPECT_LT(truncated.MemoryBytes(), perfect.MemoryBytes());
  for (int v = 0; v < 256; ++v) {
    EXPECT_EQ(truncated.UpperBound(static_cast<uint8_t>(v)),
              perfect.UpperBound(static_cast<uint8_t>(v)));
  }
}

TEST(KaryArrayTest, KeyAtSortedPositionRecoversOrder) {
  Rng rng(17);
  std::vector<int64_t> keys(300);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Next());
  std::sort(keys.begin(), keys.end());
  for (Layout l : {Layout::kBreadthFirst, Layout::kDepthFirst}) {
    KaryArray<int64_t> arr(keys, l);
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(arr.KeyAtSortedPosition(static_cast<int64_t>(i)), keys[i]);
    }
  }
}

TEST(KaryArrayTest, LowerBoundAndUpperBoundOnDuplicates) {
  std::vector<uint32_t> keys = {3, 3, 3, 8, 8, 20};
  KaryArray<uint32_t> arr(keys, Layout::kBreadthFirst);
  EXPECT_EQ(arr.LowerBound(3), 0);
  EXPECT_EQ(arr.UpperBound(3), 3);
  EXPECT_EQ(arr.LowerBound(8), 3);
  EXPECT_EQ(arr.UpperBound(8), 5);
  EXPECT_EQ(arr.LowerBound(0), 0);
  EXPECT_EQ(arr.LowerBound(21), 6);
}

TEST(KaryArrayTest, LargeRandomAgainstStdAlgorithms) {
  Rng rng(31);
  std::vector<uint16_t> keys(5000);
  for (auto& k : keys) k = static_cast<uint16_t>(rng.Next());
  std::sort(keys.begin(), keys.end());
  for (Layout l : {Layout::kBreadthFirst, Layout::kDepthFirst}) {
    KaryArray<uint16_t> arr(keys, l);
    for (int i = 0; i < 2000; ++i) {
      const uint16_t v = static_cast<uint16_t>(rng.Next());
      const int64_t expected =
          std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
      ASSERT_EQ(arr.UpperBound(v), expected) << "layout=" << LayoutName(l);
    }
  }
}

}  // namespace
}  // namespace simdtree::kary
