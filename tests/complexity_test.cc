// Complexity tests: the instrumented searches must match the paper's
// analytical claims exactly —
//   * k-ary search: exactly r = ceil(log_k(n+1)) SIMD comparisons,
//   * B+-Tree: one node per level on the descent,
//   * Seg-Trie: at most 2 SIMD comparisons per node for 8-bit segments
//     (ceil(log17 256) = 2), fixed level count, early termination above
//     leaf level on a missing segment, and zero SIMD comparisons through
//     the single-key / full-node fast paths.

#include <cstdint>
#include <vector>

#include "btree/btree.h"
#include "gtest/gtest.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/counters.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

TEST(ComplexityTest, KarySearchUsesExactlyRComparisons) {
  using T = int32_t;  // k = 5
  Rng rng(1);
  for (int64_t n : {int64_t{1}, int64_t{4}, int64_t{5}, int64_t{24},
                    int64_t{25}, int64_t{124}, int64_t{624}, int64_t{625},
                    int64_t{3124}}) {
    std::vector<T> keys = UniformDistinctKeys<T>(static_cast<size_t>(n), rng);
    const kary::KaryShape shape = kary::KaryShape::For(5, n);
    const kary::KaryLayout layout(shape, kary::Layout::kBreadthFirst);
    const int64_t stored =
        layout.StoredSlots(n, kary::Storage::kTruncated);
    std::vector<T> lin(static_cast<size_t>(stored));
    layout.Linearize(keys.data(), n, lin.data(), stored,
                     kary::PadValue<T>());
    for (int probe = 0; probe < 50; ++probe) {
      SearchCounters c;
      kary::UpperBoundBfCounted<T>(lin.data(), stored, n,
                                   static_cast<T>(rng.Next()), &c);
      // At most r comparisons; fewer only when the descent leaves the
      // truncated prefix (all-padding subtree).
      ASSERT_LE(c.simd_comparisons, static_cast<uint64_t>(shape.r))
          << "n=" << n;
      ASSERT_GE(c.simd_comparisons, 1u);
    }
    // A probe below the minimum key always walks all r levels.
    SearchCounters c;
    kary::UpperBoundBfCounted<T>(lin.data(), stored, n,
                                 std::numeric_limits<T>::min(), &c);
    ASSERT_EQ(c.simd_comparisons, static_cast<uint64_t>(shape.r));
  }
}

TEST(ComplexityTest, BPlusTreeVisitsOneNodePerLevel) {
  btree::BPlusTree<int64_t, int64_t> tree(16);
  for (int64_t i = 0; i < 20000; ++i) tree.Insert(i * 2, i);
  const int h = tree.height();
  ASSERT_GE(h, 3);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    SearchCounters c;
    const int64_t key = static_cast<int64_t>(rng.NextBounded(20000)) * 2;
    ASSERT_TRUE(tree.FindCounted(key, &c).has_value());
    // Exactly one node per level, +1 only for the prev-leaf boundary hop.
    ASSERT_GE(c.nodes_visited, static_cast<uint64_t>(h));
    ASSERT_LE(c.nodes_visited, static_cast<uint64_t>(h) + 1);
  }
}

TEST(ComplexityTest, SegTreeVisitsOneNodePerLevelToo) {
  segtree::SegTree<int64_t, int64_t> tree(16);
  for (int64_t i = 0; i < 20000; ++i) tree.Insert(i * 2, i);
  const int h = tree.height();
  SearchCounters c;
  ASSERT_TRUE(tree.FindCounted(20000, &c).has_value());
  ASSERT_GE(c.nodes_visited, static_cast<uint64_t>(h));
  ASSERT_LE(c.nodes_visited, static_cast<uint64_t>(h) + 1);
}

TEST(ComplexityTest, TrieUsesAtMostTwoSimdComparisonsPerNode) {
  // Nodes with 2..255 partial keys need 1-2 SIMD comparisons (r <= 2 for
  // the 8-bit domain at k = 17); the paper's Section 4 bound.
  segtrie::SegTrie<uint64_t, uint64_t> trie;
  Rng rng(3);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    keys.push_back(rng.Next() & 0xFFFFFF);
    trie.Insert(keys.back(), 1);
  }
  for (int i = 0; i < 500; ++i) {
    SearchCounters c;
    trie.FindCounted(keys[rng.NextBounded(keys.size())], &c);
    ASSERT_LE(c.nodes_visited, 8u);
    // <= 2 SIMD comparisons per visited node.
    ASSERT_LE(c.simd_comparisons, 2 * c.nodes_visited);
  }
}

TEST(ComplexityTest, TrieFullTraversalBoundSixteenComparisons) {
  // Paper Section 4: "A full traversal of a Seg-Trie with k = 17 from the
  // root to the leaves takes at most ceil(log17 2^64) = 16 comparison
  // operations."
  segtrie::SegTrie<uint64_t, uint64_t> trie;
  Rng rng(4);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 50000; ++i) {
    keys.push_back(rng.Next());  // full-width keys: all 8 levels active
    trie.Insert(keys.back(), 1);
  }
  uint64_t max_cmp = 0;
  for (int i = 0; i < 2000; ++i) {
    SearchCounters c;
    ASSERT_TRUE(
        trie.FindCounted(keys[rng.NextBounded(keys.size())], &c).has_value());
    max_cmp = std::max(max_cmp, c.simd_comparisons);
  }
  EXPECT_LE(max_cmp, 16u);
}

TEST(ComplexityTest, TrieTerminatesAboveLeafOnMissingSegment) {
  // Paper Section 4: "a trie may terminate the traversal above leaf level
  // if a partial key is not present on the current level" — the advantage
  // over the Seg-Tree, which always descends to a leaf.
  segtrie::SegTrie<uint64_t, uint64_t> trie;
  trie.Insert(0x0101010101010101ULL, 1);
  trie.Insert(0x0101010101010102ULL, 2);

  SearchCounters c;
  // Differs at the first segment: one node visited, done.
  EXPECT_FALSE(trie.FindCounted(0x0201010101010101ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 1u);

  c.Reset();
  // Differs at the fourth segment: four nodes visited.
  EXPECT_FALSE(trie.FindCounted(0x0101010201010101ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 4u);

  c.Reset();
  // Full match descends all 8 levels.
  EXPECT_TRUE(trie.FindCounted(0x0101010101010102ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 8u);
}

TEST(ComplexityTest, TrieFastPathsCostNoSimdComparisons) {
  // Single-key nodes: direct compare, no SIMD.
  {
    segtrie::SegTrie<uint64_t, uint64_t> trie;
    trie.Insert(42, 1);  // all 8 nodes hold exactly one partial key
    SearchCounters c;
    EXPECT_TRUE(trie.FindCounted(42, &c).has_value());
    EXPECT_EQ(c.nodes_visited, 8u);
    EXPECT_EQ(c.simd_comparisons, 0u);
    EXPECT_EQ(c.scalar_comparisons, 8u);
  }
  // Full nodes: hash-like direct index, no SIMD and no scalar compare.
  {
    segtrie::OptimizedSegTrie<uint64_t, uint64_t> trie;
    for (uint64_t k = 0; k < 256; ++k) trie.Insert(k, k);
    ASSERT_EQ(trie.active_levels(), 1);
    SearchCounters c;
    EXPECT_TRUE(trie.FindCounted(99, &c).has_value());
    EXPECT_EQ(c.nodes_visited, 1u);
    EXPECT_EQ(c.simd_comparisons, 0u);
    EXPECT_EQ(c.scalar_comparisons, 0u);
  }
}

TEST(ComplexityTest, OptimizedTrieVisitsOnlyActiveLevels) {
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> trie;
  for (uint64_t k = 0; k < 100000; ++k) trie.Insert(k, k);
  ASSERT_EQ(trie.active_levels(), 3);
  SearchCounters c;
  EXPECT_TRUE(trie.FindCounted(54321, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 3u);  // vs 8 for the plain trie

  segtrie::SegTrie<uint64_t, uint64_t> plain;
  for (uint64_t k = 0; k < 100000; ++k) plain.Insert(k, k);
  c.Reset();
  EXPECT_TRUE(plain.FindCounted(54321, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 8u);
}

}  // namespace
}  // namespace simdtree
