// Tests for the runtime SIMD dispatch layer (simd/dispatch.h): the pure
// resolution function over synthetic CPU feature sets and every
// SIMDTREE_FORCE_BACKEND value, the auto-degrade rule for backends this
// binary does not carry, the rejection messages, and the consistency of
// the process-wide decision with what the binary and host support.

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "simd/cpu_features.h"
#include "simd/dispatch.h"
#include "simd/simd128.h"

namespace simdtree {
namespace {

using simd::CpuFeatures;
using simd::DispatchLevel;
using simd::MaxSupportedLevel;
using simd::NativeKernelsCompiled;
using simd::ResolveDispatchLevel;

CpuFeatures NoFeatures() { return CpuFeatures{}; }

CpuFeatures SseOnly() {
  CpuFeatures f{};
  f.sse2 = f.sse42 = f.popcnt = true;
  return f;
}

CpuFeatures UpToAvx2() {
  CpuFeatures f = SseOnly();
  f.avx2 = true;
  return f;
}

CpuFeatures UpToAvx512() {
  CpuFeatures f = UpToAvx2();
  f.avx512f = f.avx512bw = f.avx512vl = true;
  return f;
}

// AVX-512F without BW cannot serve 8/16-bit lane compares and must not
// qualify as the AVX-512 level.
CpuFeatures Avx512FWithoutBw() {
  CpuFeatures f = UpToAvx2();
  f.avx512f = true;
  return f;
}

TEST(DispatchTest, MaxSupportedLevelLadder) {
  EXPECT_EQ(MaxSupportedLevel(NoFeatures()), DispatchLevel::kScalar);
  EXPECT_EQ(MaxSupportedLevel(SseOnly()), DispatchLevel::kSse);
  EXPECT_EQ(MaxSupportedLevel(UpToAvx2()), DispatchLevel::kAvx2);
  EXPECT_EQ(MaxSupportedLevel(UpToAvx512()), DispatchLevel::kAvx512);
  EXPECT_EQ(MaxSupportedLevel(Avx512FWithoutBw()), DispatchLevel::kAvx2);
}

TEST(DispatchTest, AutoSelectsWidestCompiledLevel) {
  DispatchLevel level = DispatchLevel::kScalar;
  std::string error;

  ASSERT_TRUE(ResolveDispatchLevel(NoFeatures(), nullptr, &level, &error));
  EXPECT_EQ(level, DispatchLevel::kScalar);

  // Auto never exceeds what the binary carries: on a full-featured CPU
  // the result is the widest level whose kernels are compiled in.
  ASSERT_TRUE(ResolveDispatchLevel(UpToAvx512(), nullptr, &level, &error));
  if (NativeKernelsCompiled(512)) {
    EXPECT_EQ(level, DispatchLevel::kAvx512);
  } else if (NativeKernelsCompiled(256)) {
    EXPECT_EQ(level, DispatchLevel::kAvx2);
  } else if (NativeKernelsCompiled(128)) {
    EXPECT_EQ(level, DispatchLevel::kSse);
  } else {
    EXPECT_EQ(level, DispatchLevel::kScalar);
  }

  // An empty force string is auto, not an unknown name.
  ASSERT_TRUE(ResolveDispatchLevel(SseOnly(), "", &level, &error));
}

TEST(DispatchTest, ForceScalarAlwaysWorks) {
  DispatchLevel level = DispatchLevel::kAvx512;
  std::string error;
  ASSERT_TRUE(ResolveDispatchLevel(NoFeatures(), "scalar", &level, &error));
  EXPECT_EQ(level, DispatchLevel::kScalar);
  ASSERT_TRUE(ResolveDispatchLevel(UpToAvx512(), "scalar", &level, &error));
  EXPECT_EQ(level, DispatchLevel::kScalar);
}

TEST(DispatchTest, ForceRejectsUnknownName) {
  DispatchLevel level = DispatchLevel::kScalar;
  std::string error;
  EXPECT_FALSE(
      ResolveDispatchLevel(UpToAvx512(), "avx1024", &level, &error));
  EXPECT_NE(error.find("not a known backend"), std::string::npos) << error;
  EXPECT_NE(error.find("avx1024"), std::string::npos) << error;
}

TEST(DispatchTest, ForceRejectsBackendTheCpuLacks) {
  DispatchLevel level = DispatchLevel::kScalar;
  std::string error;
  EXPECT_FALSE(ResolveDispatchLevel(SseOnly(), "avx512", &level, &error));
  EXPECT_NE(error.find("only supports sse"), std::string::npos) << error;

  EXPECT_FALSE(ResolveDispatchLevel(NoFeatures(), "sse", &level, &error));
  EXPECT_NE(error.find("only supports scalar"), std::string::npos) << error;

  // F without BW is not enough for avx512.
  EXPECT_FALSE(
      ResolveDispatchLevel(Avx512FWithoutBw(), "avx512", &level, &error));
}

TEST(DispatchTest, ForceRejectsBackendTheBinaryLacks) {
  // Only exercisable in builds that omit some kernels; with everything
  // compiled in, forcing any CPU-supported level succeeds instead.
  DispatchLevel level = DispatchLevel::kScalar;
  std::string error;
  const bool ok =
      ResolveDispatchLevel(UpToAvx512(), "avx512", &level, &error);
  if (NativeKernelsCompiled(512)) {
    EXPECT_TRUE(ok);
    EXPECT_EQ(level, DispatchLevel::kAvx512);
  } else {
    EXPECT_FALSE(ok);
    EXPECT_NE(error.find("built without avx512"), std::string::npos)
        << error;
  }
}

TEST(DispatchTest, ActiveDecisionIsConsistent) {
  const simd::DispatchDecision& d = simd::ActiveDispatch();
  // Never wider than the host...
  EXPECT_LE(static_cast<int>(d.level),
            static_cast<int>(MaxSupportedLevel(simd::DetectCpuFeatures())));
  // ...register width matches the level...
  switch (d.level) {
    case DispatchLevel::kAvx512:
      EXPECT_EQ(d.register_bits, 512);
      break;
    case DispatchLevel::kAvx2:
      EXPECT_EQ(d.register_bits, 256);
      break;
    default:
      EXPECT_EQ(d.register_bits, 128);
  }
  // ...forced reflects the environment this test process runs under.
  const char* force = std::getenv("SIMDTREE_FORCE_BACKEND");
  EXPECT_EQ(d.forced, force != nullptr && force[0] != '\0');
  if (d.forced) {
    EXPECT_STREQ(simd::DispatchLevelName(d.level), force);
  }
}

TEST(DispatchTest, EffectiveBackendNamesAreWellFormed) {
  for (int bits : {128, 256, 512}) {
    const std::string name = simd::EffectiveBackendName(bits);
    EXPECT_TRUE(name == "scalar" || name == "sse" || name == "avx2" ||
                name == "avx512")
        << bits << " -> " << name;
  }
  // A width the dispatch does not want natively is served scalar.
  if (!simd::DispatchWantsNative(512)) {
    EXPECT_STREQ(simd::EffectiveBackendName(512), "scalar");
  }
}

TEST(DispatchTest, WantsNativeIsMonotoneInWidth) {
  // If the decision serves 512 natively it also serves the narrower
  // widths natively (levels are a ladder).
  if (simd::DispatchWantsNative(512)) {
    EXPECT_TRUE(simd::DispatchWantsNative(256));
    EXPECT_TRUE(simd::DispatchWantsNative(128));
  }
  if (simd::DispatchWantsNative(256)) {
    EXPECT_TRUE(simd::DispatchWantsNative(128));
  }
}

}  // namespace
}  // namespace simdtree
