// Multi-threaded differential stress suite for the concurrent wrappers
// (ShardedIndex, SynchronizedIndex), designed to run under
// ThreadSanitizer (the CI tsan job builds exactly this file plus
// synchronized_test with -fsanitize=thread).
//
// Scheme: W writer threads each own a disjoint congruence class of the
// key space (key % W == t), so the final state is independent of the
// interleaving and a mutex-guarded std::map oracle — updated alongside
// every index mutation — converges to the exact expected contents. R
// reader threads concurrently hammer Find / FindBatch / ScanRange and
// check what CAN be checked mid-flight (values are a pure function of
// the key; scans are ascending and in-window). At each quiescent point
// (all threads joined) the full index is diffed against the oracle:
// size, complete stitched scan, per-key Find, and a FindBatch over
// every live key plus guaranteed misses.
//
// The key mix deliberately includes duplicates (multimap backends) and
// the exact shard-splitter keys and their neighbours, so shard-boundary
// routing is exercised by writers and readers at once.
//
// Default sizes keep the test in tier-1 time on one core (and under
// TSan); SIMDTREE_STRESS=1 scales the workload up for the ctest
// `stress` label.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "core/sharded.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"

namespace simdtree {
namespace {

// 10x everything when SIMDTREE_STRESS is set (the ctest `stress` label).
int StressScale() {
  const char* env = std::getenv("SIMDTREE_STRESS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 10 : 1;
}

constexpr int kWriters = 4;
constexpr int kReaders = 2;
constexpr int kRounds = 3;

// Deterministic value for a key: readers can verify any observed pair
// without knowing which writer stored it.
uint64_t ValueOf(uint64_t key) {
  return (key ^ 0xC0FFEE0DDBA11ULL) * 0x9E3779B97F4A7C15ULL;
}

// The shared key mix. Keys cluster around the 8-shard uniform splitters
// (s * 2^61) so every shard sees traffic and the boundary keys
// themselves — splitter, splitter-1, splitter+1 — are hit constantly.
uint64_t MakeKey(Rng& rng) {
  const uint64_t shard = rng.NextBounded(8);
  const uint64_t base = shard << 61;
  switch (rng.NextBounded(8)) {
    case 0: return base;                              // the splitter itself
    case 1: return base == 0 ? 0 : base - 1;          // left of boundary
    case 2: return base + 1;                          // right of boundary
    default: return base + rng.NextBounded(4096);     // near-boundary range
  }
}

// Key ownership: writer t mutates only keys with key % kWriters == t.
uint64_t OwnKey(Rng& rng, int t) {
  const uint64_t k = MakeKey(rng);
  return k - (k % kWriters) + static_cast<uint64_t>(t);
}

// Mutex-guarded oracle: key -> live occurrence count. Multimap backends
// accumulate counts; map backends (Seg-Trie) cap them at 1.
struct Oracle {
  std::mutex mutex;
  std::map<uint64_t, uint64_t> counts;
};

template <typename Wrapper>
void WriterLoop(Wrapper& index, Oracle& oracle, bool multimap, int t,
                int ops, std::atomic<uint64_t>& errors) {
  Rng rng(static_cast<uint64_t>(t) * 1000003 + 17);
  for (int i = 0; i < ops; ++i) {
    const uint64_t k = OwnKey(rng, t);
    if (rng.NextBounded(100) < 60) {
      index.Insert(k, ValueOf(k));
      std::lock_guard guard(oracle.mutex);
      uint64_t& c = oracle.counts[k];
      c = multimap ? c + 1 : 1;
    } else {
      const bool did = index.Erase(k);
      std::lock_guard guard(oracle.mutex);
      auto it = oracle.counts.find(k);
      const bool expected = it != oracle.counts.end() && it->second > 0;
      // Only this thread mutates k, so the return value is exact.
      if (did != expected) errors.fetch_add(1);
      if (did && it != oracle.counts.end() && --it->second == 0) {
        oracle.counts.erase(it);
      }
    }
  }
}

template <typename Wrapper>
void ReaderLoop(const Wrapper& index, int t, int ops,
                std::atomic<uint64_t>& errors) {
  Rng rng(static_cast<uint64_t>(t) * 777 + 5);
  std::vector<uint64_t> batch(64);
  std::vector<std::optional<uint64_t>> out(64);
  for (int i = 0; i < ops; ++i) {
    const uint64_t k = MakeKey(rng);
    if (const auto v = index.Find(k); v.has_value() && *v != ValueOf(k)) {
      errors.fetch_add(1);
    }
    if (i % 8 == 0) {
      for (auto& b : batch) b = MakeKey(rng);
      index.FindBatch(batch.data(), batch.size(), out.data());
      for (size_t j = 0; j < batch.size(); ++j) {
        if (out[j].has_value() && *out[j] != ValueOf(batch[j])) {
          errors.fetch_add(1);
        }
      }
    }
    if (i % 16 == 0) {
      const uint64_t lo = MakeKey(rng);
      const uint64_t hi = lo + rng.NextBounded(1u << 13);
      uint64_t prev = 0;
      bool first = true;
      index.ScanRange(lo, hi, [&](uint64_t key, const uint64_t& value) {
        if (key < lo || key >= hi || value != ValueOf(key) ||
            (!first && key < prev)) {
          errors.fetch_add(1);
        }
        prev = key;
        first = false;
      });
    }
  }
}

// Full diff at a quiescent point: nobody else is touching the index.
template <typename Wrapper>
void DiffAgainstOracle(const Wrapper& index, Oracle& oracle) {
  size_t live = 0;
  for (const auto& [k, c] : oracle.counts) live += c;
  ASSERT_EQ(index.size(), live);

  // Complete stitched scan: ascending keys, each key exactly count
  // times, every value right.
  auto it = oracle.counts.begin();
  uint64_t seen_of_key = 0;
  size_t scanned = 0;
  index.ScanRange(0, ~0ULL,
                  [&](uint64_t k, const uint64_t& v) {
                    ++scanned;
                    ASSERT_NE(it, oracle.counts.end());
                    if (seen_of_key == it->second) {
                      ++it;
                      seen_of_key = 0;
                      ASSERT_NE(it, oracle.counts.end());
                    }
                    ASSERT_EQ(k, it->first);
                    ASSERT_EQ(v, ValueOf(k));
                    ++seen_of_key;
                  },
                  /*hi_inclusive=*/true);
  ASSERT_EQ(scanned, live);

  // FindBatch over every live key plus interleaved guaranteed misses
  // (own-class keys never inserted: counts lack them).
  std::vector<uint64_t> probes;
  std::vector<bool> want_hit;
  for (const auto& [k, c] : oracle.counts) {
    probes.push_back(k);
    want_hit.push_back(true);
    const uint64_t miss = k + (1ULL << 40);
    if (oracle.counts.find(miss) == oracle.counts.end()) {
      probes.push_back(miss);
      want_hit.push_back(false);
    }
  }
  std::vector<std::optional<uint64_t>> out(probes.size());
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i].has_value(), static_cast<bool>(want_hit[i]))
        << "i=" << i << " key=" << probes[i];
    if (want_hit[i]) {
      ASSERT_EQ(*out[i], ValueOf(probes[i]));
      ASSERT_EQ(index.Find(probes[i]).value(), ValueOf(probes[i]));
    } else {
      ASSERT_FALSE(index.Contains(probes[i]));
    }
  }
}

template <typename Wrapper>
void RunStress(Wrapper& index, bool multimap) {
  const int writer_ops = 2000 * StressScale();
  const int reader_ops = 400 * StressScale();
  Oracle oracle;
  std::atomic<uint64_t> errors{0};
  for (int round = 0; round < kRounds; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
      threads.emplace_back([&, t] {
        WriterLoop(index, oracle, multimap, t, writer_ops, errors);
      });
    }
    for (int t = 0; t < kReaders; ++t) {
      threads.emplace_back([&, t] {
        ReaderLoop(index, t + 100 * round, reader_ops, errors);
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_EQ(errors.load(), 0u) << "round " << round;
    DiffAgainstOracle(index, oracle);  // quiescent point
  }
}

using SegTree64 = segtree::SegTree<uint64_t, uint64_t>;
using BTree64 = btree::BPlusTree<uint64_t, uint64_t>;
using Trie64 = segtrie::SegTrie<uint64_t, uint64_t>;

TEST(ConcurrentStressTest, ShardedSegTree) {
  ShardedIndex<SegTree64> index(8);
  RunStress(index, /*multimap=*/true);
  EXPECT_TRUE(index.Validate());
}

TEST(ConcurrentStressTest, ShardedBPlusTree) {
  ShardedIndex<BTree64> index(8);
  RunStress(index, /*multimap=*/true);
  EXPECT_TRUE(index.Validate());
}

TEST(ConcurrentStressTest, ShardedSegTrie) {
  ShardedIndex<Trie64> index(8);
  RunStress(index, /*multimap=*/false);
  EXPECT_TRUE(index.Validate());
}

// Fewer shards than writers: guaranteed same-shard writer contention.
TEST(ConcurrentStressTest, ShardedTwoShardsContended) {
  ShardedIndex<SegTree64> index(2);
  RunStress(index, /*multimap=*/true);
  EXPECT_TRUE(index.Validate());
}

TEST(ConcurrentStressTest, SynchronizedSegTree) {
  SynchronizedIndex<SegTree64> index;
  RunStress(index, /*multimap=*/true);
  EXPECT_TRUE(index.WithRead(
      [](const SegTree64& tree) { return tree.Validate(); }));
}

TEST(ConcurrentStressTest, SynchronizedSegTrie) {
  SynchronizedIndex<Trie64> index;
  RunStress(index, /*multimap=*/false);
  EXPECT_TRUE(index.WithRead(
      [](const Trie64& trie) { return trie.Validate(); }));
}

}  // namespace
}  // namespace simdtree
