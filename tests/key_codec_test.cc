// Tests for the order-preserving key codecs and the adapted Seg-Trie over
// signed integer and floating-point keys.

#include "segtrie/key_codec.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree::segtrie {
namespace {

template <typename Codec, typename K>
void ExpectOrderPreserved(std::vector<K> values) {
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    if (values[i - 1] == values[i]) continue;
    ASSERT_LT(Codec::Encode(values[i - 1]), Codec::Encode(values[i]))
        << "at " << i;
  }
  for (K v : values) {
    ASSERT_EQ(Codec::Decode(Codec::Encode(v)), v);
  }
}

TEST(KeyCodecTest, SignedCodecsPreserveOrder) {
  ExpectOrderPreserved<SignedCodec<int8_t>>(
      std::vector<int8_t>{-128, -127, -1, 0, 1, 126, 127});
  Rng rng(1);
  std::vector<int64_t> values = {std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max(), 0, -1,
                                 1};
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<int64_t>(rng.Next()));
  }
  ExpectOrderPreserved<SignedCodec<int64_t>>(values);
}

TEST(KeyCodecTest, FloatCodecPreservesOrder) {
  std::vector<float> values = {-std::numeric_limits<float>::infinity(),
                               std::numeric_limits<float>::lowest(),
                               -1e30f,
                               -1.5f,
                               -std::numeric_limits<float>::denorm_min(),
                               -0.0f,
                               0.0f,
                               std::numeric_limits<float>::denorm_min(),
                               1.5f,
                               1e30f,
                               std::numeric_limits<float>::max(),
                               std::numeric_limits<float>::infinity()};
  // -0.0 and 0.0 compare equal as floats but have distinct encodings with
  // -0.0 ordered first (IEEE totalOrder).
  for (size_t i = 1; i < values.size(); ++i) {
    ASSERT_LT(FloatCodec::Encode(values[i - 1]),
              FloatCodec::Encode(values[i]));
  }
  for (float v : values) {
    const float back = FloatCodec::Decode(FloatCodec::Encode(v));
    ASSERT_EQ(std::bit_cast<uint32_t>(back), std::bit_cast<uint32_t>(v));
  }
}

TEST(KeyCodecTest, DoubleCodecRandomRoundTrip) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double v = std::bit_cast<double>(rng.Next());
    if (std::isnan(v)) continue;
    const double back = DoubleCodec::Decode(DoubleCodec::Encode(v));
    ASSERT_EQ(std::bit_cast<uint64_t>(back), std::bit_cast<uint64_t>(v));
  }
  // Random pair order check.
  for (int i = 0; i < 5000; ++i) {
    const double a = std::bit_cast<double>(rng.Next());
    const double b = std::bit_cast<double>(rng.Next());
    if (std::isnan(a) || std::isnan(b)) continue;
    if (a < b) {
      ASSERT_LT(DoubleCodec::Encode(a), DoubleCodec::Encode(b));
    } else if (b < a) {
      ASSERT_LT(DoubleCodec::Encode(b), DoubleCodec::Encode(a));
    }
  }
}

TEST(AdaptedSegTrieTest, SignedKeysBehaveLikeMap) {
  AdaptedSegTrie<int64_t, int64_t> trie;
  std::map<int64_t, int64_t> model;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const int64_t k = static_cast<int64_t>(rng.Next()) >> 40;  // +/- spread
    if (rng.NextBounded(100) < 70) {
      trie.Insert(k, i);
      model[k] = i;
    } else {
      ASSERT_EQ(trie.Erase(k), model.erase(k) > 0);
    }
  }
  ASSERT_TRUE(trie.Validate());
  ASSERT_EQ(trie.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(trie.Find(k).value(), v);
  }
  // Ordered traversal sees the signed order, negatives first.
  std::vector<int64_t> seen;
  trie.ForEach([&](int64_t k, const int64_t&) { seen.push_back(k); });
  ASSERT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  ASSERT_EQ(seen.size(), model.size());
}

TEST(AdaptedSegTrieTest, DoubleKeysRangeScan) {
  AdaptedSegTrie<double, int32_t> trie;
  std::map<double, int32_t> model;
  Rng rng(5);
  for (int i = 0; i < 3000; ++i) {
    const double k = (rng.NextDouble() - 0.5) * 1e6;
    trie.Insert(k, i);
    model[k] = i;
  }
  ASSERT_EQ(trie.size(), model.size());
  for (int t = 0; t < 50; ++t) {
    double lo = (rng.NextDouble() - 0.5) * 1e6;
    double hi = (rng.NextDouble() - 0.5) * 1e6;
    if (lo > hi) std::swap(lo, hi);
    std::vector<double> got;
    trie.ScanRange(lo, hi, [&](double k, const int32_t&) { got.push_back(k); });
    std::vector<double> expected;
    for (auto it = model.lower_bound(lo);
         it != model.end() && it->first < hi; ++it) {
      expected.push_back(it->first);
    }
    ASSERT_EQ(got, expected) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(AdaptedSegTrieTest, NegativeAndPositiveInfinity) {
  AdaptedSegTrie<float, int32_t> trie;
  trie.Insert(-std::numeric_limits<float>::infinity(), 1);
  trie.Insert(0.0f, 2);
  trie.Insert(std::numeric_limits<float>::infinity(), 3);
  trie.Insert(-123.5f, 4);
  std::vector<int32_t> order;
  trie.ForEach([&](float, const int32_t& v) { order.push_back(v); });
  EXPECT_EQ(order, (std::vector<int32_t>{1, 4, 2, 3}));
  EXPECT_EQ(trie.Find(-123.5f).value(), 4);
  EXPECT_FALSE(trie.Contains(123.5f));
}

}  // namespace
}  // namespace simdtree::segtrie
