// The scalar baselines must agree with std::upper_bound.

#include "kary/scalar_search.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree::kary {
namespace {

template <typename T>
class ScalarSearchTypedTest : public testing::Test {};

using KeyTypes =
    testing::Types<int8_t, uint8_t, int16_t, int32_t, uint32_t, int64_t>;
TYPED_TEST_SUITE(ScalarSearchTypedTest, KeyTypes);

TYPED_TEST(ScalarSearchTypedTest, BinaryAndSequentialMatchStdUpperBound) {
  using T = TypeParam;
  Rng rng(91);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{5}, int64_t{64},
                    int64_t{200}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.NextBounded(64));
    std::sort(keys.begin(), keys.end());
    std::vector<T> probes = {std::numeric_limits<T>::min(),
                             std::numeric_limits<T>::max()};
    for (int i = 0; i < 100; ++i) probes.push_back(static_cast<T>(rng.Next()));
    for (T k : keys) probes.push_back(k);
    for (T v : probes) {
      const int64_t expected =
          std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
      EXPECT_EQ(BinaryUpperBound(keys.data(), n, v), expected);
      EXPECT_EQ(SequentialUpperBound(keys.data(), n, v), expected);
    }
  }
}

}  // namespace
}  // namespace simdtree::kary
