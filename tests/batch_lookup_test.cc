// Differential coverage for the batched-lookup subsystem: every batch
// API must agree element-for-element with its single-query counterpart
// (or the std:: oracle) across layouts (BF/DF), bitmask-evaluation
// policies, backends, register widths, batch sizes that exercise partial
// and multi-group pipelines (1/7/16/1000), duplicate keys, and misses.
// The batch layer changes the memory schedule, never the answer.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "btree/btree.h"
#include "core/batch.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "kary/batch_search.h"
#include "kary/kary_array.h"
#include "kary/linearize.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "simd/bitmask_eval.h"
#include "simd/simd256.h"
#include "util/counters.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using kary::KaryArray;
using kary::Layout;
using kary::Storage;
using simd::Backend;

constexpr size_t kBatchSizes[] = {1, 7, 16, 1000};

// Probes covering hits, misses, neighbours of keys, and type extremes.
template <typename T>
std::vector<T> MakeProbes(const std::vector<T>& keys, size_t count,
                          Rng& rng) {
  std::vector<T> probes = {std::numeric_limits<T>::min(),
                           std::numeric_limits<T>::max(), T{0}};
  for (T k : keys) {
    probes.push_back(k);
    if (k != std::numeric_limits<T>::min())
      probes.push_back(static_cast<T>(k - 1));
    if (k != std::numeric_limits<T>::max())
      probes.push_back(static_cast<T>(k + 1));
  }
  while (probes.size() < count) probes.push_back(static_cast<T>(rng.Next()));
  probes.resize(count);
  return probes;
}

// --- KaryArray vs std::upper_bound / std::lower_bound ---------------------

template <typename T, typename Eval, Backend B, int kBits>
void CheckKaryArray(const std::vector<T>& keys, Layout layout,
                    Storage storage) {
  KaryArray<T, kBits> arr(keys, layout, storage);
  Rng rng(99);
  for (size_t batch : kBatchSizes) {
    const auto probes = MakeProbes<T>(keys, batch, rng);
    std::vector<int64_t> ub(batch), lb(batch);
    arr.template UpperBoundBatch<Eval, B>(probes.data(), batch, ub.data());
    arr.template LowerBoundBatch<Eval, B>(probes.data(), batch, lb.data());
    for (size_t i = 0; i < batch; ++i) {
      const int64_t want_ub =
          std::upper_bound(keys.begin(), keys.end(), probes[i]) -
          keys.begin();
      const int64_t want_lb =
          std::lower_bound(keys.begin(), keys.end(), probes[i]) -
          keys.begin();
      ASSERT_EQ(ub[i], want_ub)
          << "upper batch=" << batch << " i=" << i << " eval=" << Eval::kName
          << " v=" << static_cast<int64_t>(probes[i]);
      ASSERT_EQ(lb[i], want_lb)
          << "lower batch=" << batch << " i=" << i << " eval=" << Eval::kName
          << " v=" << static_cast<int64_t>(probes[i]);
    }
    // Non-default group sizes, including the degenerate group of one.
    std::vector<int64_t> ub_g(batch);
    for (int group : {1, 3, kMaxBatchGroup}) {
      arr.template UpperBoundBatch<Eval, B>(probes.data(), batch,
                                            ub_g.data(), group);
      for (size_t i = 0; i < batch; ++i) {
        ASSERT_EQ(ub_g[i], ub[i]) << "group=" << group << " i=" << i;
      }
    }
  }
}

template <typename T, typename Eval, Backend B, int kBits>
void CheckKaryArrayAllShapes() {
  Rng rng(2026);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{17}, int64_t{100},
                    int64_t{1000}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());
    CheckKaryArray<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                      Storage::kTruncated);
    CheckKaryArray<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                      Storage::kPerfect);
    CheckKaryArray<T, Eval, B, kBits>(keys, Layout::kDepthFirst,
                                      Storage::kPerfect);
    // Heavy duplication: few distinct values.
    for (auto& k : keys) k = static_cast<T>(rng.NextBounded(5) * 7);
    std::sort(keys.begin(), keys.end());
    CheckKaryArray<T, Eval, B, kBits>(keys, Layout::kBreadthFirst,
                                      Storage::kTruncated);
    CheckKaryArray<T, Eval, B, kBits>(keys, Layout::kDepthFirst,
                                      Storage::kPerfect);
  }
}

TEST(BatchKaryArrayTest, AllEvalPoliciesSse128) {
  if constexpr (simd::kHaveSse) {
    CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, Backend::kSse,
                            128>();
    CheckKaryArrayAllShapes<uint32_t, simd::BitShiftEval, Backend::kSse,
                            128>();
    CheckKaryArrayAllShapes<uint32_t, simd::SwitchCaseEval, Backend::kSse,
                            128>();
  }
}

TEST(BatchKaryArrayTest, AllEvalPoliciesScalar128) {
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                          128>();
  CheckKaryArrayAllShapes<uint32_t, simd::BitShiftEval, Backend::kScalar,
                          128>();
  CheckKaryArrayAllShapes<uint32_t, simd::SwitchCaseEval, Backend::kScalar,
                          128>();
}

TEST(BatchKaryArrayTest, OtherKeyWidthsDefaultBackend) {
  CheckKaryArrayAllShapes<uint8_t, simd::PopcountEval, simd::kDefaultBackend,
                          128>();
  CheckKaryArrayAllShapes<int16_t, simd::PopcountEval, simd::kDefaultBackend,
                          128>();
  CheckKaryArrayAllShapes<int64_t, simd::PopcountEval, simd::kDefaultBackend,
                          128>();
  CheckKaryArrayAllShapes<uint64_t, simd::SwitchCaseEval,
                          simd::kDefaultBackend, 128>();
}

TEST(BatchKaryArrayTest, Width256) {
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                          256>();
#if defined(__AVX2__)
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, Backend::kSse,
                          256>();
  CheckKaryArrayAllShapes<uint16_t, simd::BitShiftEval, Backend::kSse,
                          256>();
#endif
  // Runtime dispatch at 256: native when this host+binary carry AVX2
  // kernels, the scalar image otherwise — the answers are identical
  // either way, so this runs green everywhere.
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, simd::kDefaultBackend,
                          256>();
}

TEST(BatchKaryArrayTest, Width512) {
  // The scalar 512-bit image (k = 65/33/17/9) runs on any hardware.
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, Backend::kScalar,
                          512>();
  CheckKaryArrayAllShapes<int16_t, simd::SwitchCaseEval, Backend::kScalar,
                          512>();
  // Dispatch routing: native EVEX kernels on AVX-512 hosts, scalar
  // image elsewhere.
  CheckKaryArrayAllShapes<uint32_t, simd::PopcountEval, simd::kDefaultBackend,
                          512>();
  CheckKaryArrayAllShapes<uint64_t, simd::BitShiftEval, simd::kDefaultBackend,
                          512>();
}

// --- B+-Tree / Seg-Tree FindBatch & LowerBoundBatch -----------------------

// `tree` built over (keys[i], values[i]); checks batch results against
// the single-query calls for every batch size.
template <typename TreeT, typename Key>
void CheckTreeBatches(const TreeT& tree, const std::vector<Key>& keys) {
  Rng rng(5);
  for (size_t batch : kBatchSizes) {
    const auto probes = MakeProbes<Key>(keys, batch, rng);
    std::vector<const uint64_t*> found(batch);
    std::vector<typename TreeT::ConstIterator> lbs(batch);
    tree.FindBatch(probes.data(), batch, found.data());
    tree.LowerBoundBatch(probes.data(), batch, lbs.data());
    for (size_t i = 0; i < batch; ++i) {
      const auto want = tree.Find(probes[i]);
      ASSERT_EQ(found[i] != nullptr, want.has_value())
          << "batch=" << batch << " i=" << i;
      if (want.has_value()) {
        ASSERT_EQ(*found[i], *want) << "batch=" << batch << " i=" << i;
      }
      const auto want_it = tree.LowerBoundIter(probes[i]);
      ASSERT_EQ(lbs[i].valid(), want_it.valid());
      if (want_it.valid()) {
        ASSERT_EQ(lbs[i].key(), want_it.key());
        ASSERT_EQ(lbs[i].value(), want_it.value());
      }
    }
    // Explicit group sizes.
    std::vector<const uint64_t*> found_g(batch);
    for (int group : {1, 5, kMaxBatchGroup}) {
      tree.FindBatch(probes.data(), batch, found_g.data(), group);
      for (size_t i = 0; i < batch; ++i) ASSERT_EQ(found_g[i], found[i]);
    }
  }
}

template <typename TreeT>
void CheckTreeAllShapes() {
  using Key = typename TreeT::KeyType;
  // Empty tree: everything misses.
  {
    TreeT tree(16);
    const Key probes[3] = {Key{0}, Key{1}, Key{42}};
    const uint64_t* out[3];
    typename TreeT::ConstIterator its[3];
    tree.FindBatch(probes, 3, out);
    tree.LowerBoundBatch(probes, 3, its);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(out[i], nullptr);
      EXPECT_FALSE(its[i].valid());
    }
  }
  // Incrementally built with duplicates (multimap), small fanout for
  // depth; then a bulk-loaded larger tree.
  Rng rng(11);
  {
    TreeT tree(8);
    std::vector<Key> keys;
    for (int i = 0; i < 3000; ++i) {
      const Key k = static_cast<Key>(rng.NextBounded(1200));
      keys.push_back(k);
      tree.Insert(k, static_cast<uint64_t>(i));
    }
    std::sort(keys.begin(), keys.end());
    CheckTreeBatches(tree, keys);
  }
  {
    std::vector<Key> keys(20000);
    for (auto& k : keys) k = static_cast<Key>(rng.Next());
    std::sort(keys.begin(), keys.end());
    std::vector<uint64_t> values(keys.size());
    for (size_t i = 0; i < values.size(); ++i) values[i] = i;
    TreeT tree =
        TreeT::BulkLoad(keys.data(), values.data(), keys.size());
    CheckTreeBatches(tree, keys);
  }
}

TEST(BatchTreeTest, PlainBPlusTreeBinary) {
  CheckTreeAllShapes<btree::BPlusTree<uint32_t, uint64_t>>();
}

TEST(BatchTreeTest, PlainBPlusTreeSequential) {
  CheckTreeAllShapes<
      btree::BPlusTree<uint32_t, uint64_t, btree::SequentialSearchTag>>();
}

TEST(BatchTreeTest, SegTreeBreadthFirst) {
  CheckTreeAllShapes<
      segtree::SegTree<uint32_t, uint64_t, Layout::kBreadthFirst>>();
}

TEST(BatchTreeTest, SegTreeDepthFirst) {
  CheckTreeAllShapes<
      segtree::SegTree<uint32_t, uint64_t, Layout::kDepthFirst>>();
}

TEST(BatchTreeTest, SegTreeEvalAndBackendCombos) {
  CheckTreeAllShapes<segtree::SegTree<uint32_t, uint64_t,
                                      Layout::kBreadthFirst,
                                      simd::BitShiftEval, Backend::kScalar>>();
  CheckTreeAllShapes<segtree::SegTree<
      uint32_t, uint64_t, Layout::kDepthFirst, simd::SwitchCaseEval,
      simd::kDefaultBackend>>();
  CheckTreeAllShapes<segtree::SegTree<uint64_t, uint64_t,
                                      Layout::kBreadthFirst,
                                      simd::PopcountEval,
                                      simd::kDefaultBackend>>();
#if defined(__AVX2__)
  CheckTreeAllShapes<segtree::SegTree<uint32_t, uint64_t,
                                      Layout::kBreadthFirst,
                                      simd::PopcountEval, Backend::kSse,
                                      256>>();
#endif
}

TEST(BatchTreeTest, SegTreeWiderWidths) {
  CheckTreeAllShapes<segtree::SegTree<uint32_t, uint64_t,
                                      Layout::kBreadthFirst,
                                      simd::PopcountEval, Backend::kScalar,
                                      512>>();
  // Dispatch-routed inner-node search at 256/512-bit node width.
  CheckTreeAllShapes<segtree::SegTree<uint32_t, uint64_t,
                                      Layout::kBreadthFirst,
                                      simd::PopcountEval,
                                      simd::kDefaultBackend, 256>>();
  CheckTreeAllShapes<segtree::SegTree<uint32_t, uint64_t,
                                      Layout::kDepthFirst,
                                      simd::PopcountEval,
                                      simd::kDefaultBackend, 512>>();
}

// --- Seg-Trie FindBatch ---------------------------------------------------

template <typename TrieT>
void CheckTrieBatches() {
  using Key = typename TrieT::KeyType;
  TrieT trie;
  // Empty trie: everything misses.
  {
    const Key probes[2] = {Key{0}, Key{77}};
    const uint64_t* out[2];
    trie.FindBatch(probes, 2, out);
    EXPECT_EQ(out[0], nullptr);
    EXPECT_EQ(out[1], nullptr);
  }
  Rng rng(21);
  std::vector<Key> keys;
  for (int i = 0; i < 4000; ++i) {
    // Mix of dense low keys, shared-prefix clusters, and full-width keys
    // so lookups terminate at different trie levels.
    Key k;
    switch (i % 3) {
      case 0: k = static_cast<Key>(rng.NextBounded(2048)); break;
      case 1:
        k = static_cast<Key>(Key{0xAB} << (sizeof(Key) * 8 - 8)) |
            static_cast<Key>(rng.NextBounded(4096));
        break;
      default: k = static_cast<Key>(rng.Next()); break;
    }
    keys.push_back(k);
    trie.Insert(k, static_cast<uint64_t>(i));
  }
  for (size_t batch : kBatchSizes) {
    const auto probes = MakeProbes<Key>(keys, batch, rng);
    std::vector<const uint64_t*> out(batch);
    trie.FindBatch(probes.data(), batch, out.data());
    for (size_t i = 0; i < batch; ++i) {
      const auto want = trie.Find(probes[i]);
      ASSERT_EQ(out[i] != nullptr, want.has_value())
          << "batch=" << batch << " i=" << i;
      if (want.has_value()) ASSERT_EQ(*out[i], *want);
    }
    std::vector<const uint64_t*> out_g(batch);
    for (int group : {1, 5, kMaxBatchGroup}) {
      trie.FindBatch(probes.data(), batch, out_g.data(), group);
      for (size_t i = 0; i < batch; ++i) ASSERT_EQ(out_g[i], out[i]);
    }
  }
}

TEST(BatchTrieTest, PlainSegTrie64) {
  CheckTrieBatches<segtrie::SegTrie<uint64_t, uint64_t>>();
}

TEST(BatchTrieTest, OptimizedSegTrie64) {
  CheckTrieBatches<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
}

TEST(BatchTrieTest, PlainSegTrie32) {
  CheckTrieBatches<segtrie::SegTrie<uint32_t, uint64_t>>();
}

// --- logical search cost: batch counters vs single-query counted ----------
//
// The counted batch paths must report exactly the logical cost of
// running every probe through the single-query counted variant — the
// pipeline changes the memory schedule, never the amount of logical
// work. The cost must also be independent of the group width.

template <typename T>
void CheckKaryBatchCounters(const std::vector<T>& keys, Layout layout,
                            Storage storage) {
  KaryArray<T> arr(keys, layout, storage);
  // Rebuild the linearized array exactly as KaryArray does, so the
  // low-level counted singles can serve as the oracle.
  kary::KaryShape shape = kary::KaryShape::For(
      simd::LaneTraits<T>::kArity, keys.empty() ? 1 : keys.size());
  const kary::KaryLayout kl(shape, layout);
  const int64_t stored =
      kl.StoredSlots(static_cast<int64_t>(keys.size()), storage);
  std::vector<T> lin(static_cast<size_t>(stored));
  kl.Linearize(keys.data(), static_cast<int64_t>(keys.size()), lin.data(),
               stored, kary::PadValue<T>());

  Rng rng(77);
  const auto probes = MakeProbes<T>(keys, 300, rng);
  const int64_t n = static_cast<int64_t>(keys.size());

  SearchCounters want;
  std::vector<int64_t> want_ub(probes.size());
  for (size_t i = 0; i < probes.size(); ++i) {
    want_ub[i] =
        layout == Layout::kBreadthFirst
            ? kary::UpperBoundBfCounted<T>(lin.data(), stored, n, probes[i],
                                           &want)
            : kary::UpperBoundDfCounted<T>(lin.data(), stored, n, probes[i],
                                           &want);
  }

  std::vector<int64_t> out(probes.size());
  for (int group : {1, 6, kMaxBatchGroup}) {
    SearchCounters got;
    arr.UpperBoundBatch(probes.data(), probes.size(), out.data(), group,
                        &got);
    EXPECT_EQ(got.simd_comparisons, want.simd_comparisons)
        << "group=" << group;
    EXPECT_EQ(got.nodes_visited, want.nodes_visited) << "group=" << group;
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(out[i], want_ub[i]) << "i=" << i;
    }
  }

  // Lower bound: each non-minimum probe costs exactly one counted
  // upper-bound descent on v - 1; type-minimum probes resolve to 0
  // without touching the array (LowerBoundFromUpperBound contract).
  SearchCounters want_lb;
  for (size_t i = 0; i < probes.size(); ++i) {
    if (probes[i] == std::numeric_limits<T>::min()) continue;
    const T v = static_cast<T>(probes[i] - 1);
    if (layout == Layout::kBreadthFirst) {
      kary::UpperBoundBfCounted<T>(lin.data(), stored, n, v, &want_lb);
    } else {
      kary::UpperBoundDfCounted<T>(lin.data(), stored, n, v, &want_lb);
    }
  }
  for (int group : {1, kMaxBatchGroup}) {
    SearchCounters got;
    arr.LowerBoundBatch(probes.data(), probes.size(), out.data(), group,
                        &got);
    EXPECT_EQ(got.simd_comparisons, want_lb.simd_comparisons)
        << "group=" << group;
  }
}

TEST(BatchCountersTest, KaryArrayMatchesCountedSingles) {
  Rng rng(123);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{100}, int64_t{5000}}) {
    std::vector<uint32_t> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<uint32_t>(rng.Next());
    std::sort(keys.begin(), keys.end());
    CheckKaryBatchCounters<uint32_t>(keys, Layout::kBreadthFirst,
                                     Storage::kTruncated);
    CheckKaryBatchCounters<uint32_t>(keys, Layout::kBreadthFirst,
                                     Storage::kPerfect);
    CheckKaryBatchCounters<uint32_t>(keys, Layout::kDepthFirst,
                                     Storage::kPerfect);
  }
}

TEST(BatchCountersTest, KaryTypeMinProbesCostNothing) {
  Rng rng(9);
  std::vector<uint32_t> keys(1000);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Next());
  std::sort(keys.begin(), keys.end());
  KaryArray<uint32_t> arr(keys, Layout::kBreadthFirst, Storage::kTruncated);

  const std::vector<uint32_t> probes(64, std::numeric_limits<uint32_t>::min());
  std::vector<int64_t> out(probes.size(), -1);
  SearchCounters c;
  arr.LowerBoundBatch(probes.data(), probes.size(), out.data(),
                      kDefaultBatchGroup, &c);
  EXPECT_EQ(c.simd_comparisons, 0u);
  EXPECT_EQ(c.nodes_visited, 0u);
  for (int64_t v : out) EXPECT_EQ(v, 0);
}

template <typename TreeT>
void CheckTreeBatchCounters() {
  using Key = typename TreeT::KeyType;
  Rng rng(17);
  TreeT tree(8);  // small fanout: depth, so nodes_visited is interesting
  std::vector<Key> keys;
  for (int i = 0; i < 4000; ++i) {
    const Key k = static_cast<Key>(rng.NextBounded(2000));
    keys.push_back(k);
    tree.Insert(k, static_cast<uint64_t>(i));
  }
  std::sort(keys.begin(), keys.end());
  const auto probes = MakeProbes<Key>(keys, 500, rng);

  SearchCounters want;
  for (Key p : probes) tree.FindCounted(p, &want);
  ASSERT_GT(want.nodes_visited, probes.size());  // depth > 1

  std::vector<const uint64_t*> out(probes.size());
  for (int group : {1, 5, kMaxBatchGroup}) {
    SearchCounters got;
    tree.FindBatch(probes.data(), probes.size(), out.data(), group, &got);
    EXPECT_EQ(got.nodes_visited, want.nodes_visited) << "group=" << group;
  }

  // LowerBoundBatch has no single-query counted twin; its logical cost
  // contract is group-invariance.
  std::vector<typename TreeT::ConstIterator> its(probes.size());
  SearchCounters lb1, lb16;
  tree.LowerBoundBatch(probes.data(), probes.size(), its.data(), 1, &lb1);
  tree.LowerBoundBatch(probes.data(), probes.size(), its.data(), 16, &lb16);
  EXPECT_GT(lb1.nodes_visited, 0u);
  EXPECT_EQ(lb1.nodes_visited, lb16.nodes_visited);
}

TEST(BatchCountersTest, BPlusTreeMatchesFindCounted) {
  CheckTreeBatchCounters<btree::BPlusTree<uint32_t, uint64_t>>();
}

TEST(BatchCountersTest, SegTreeMatchesFindCounted) {
  CheckTreeBatchCounters<segtree::SegTree<uint32_t, uint64_t>>();
  CheckTreeBatchCounters<
      segtree::SegTree<uint32_t, uint64_t, Layout::kDepthFirst>>();
}

template <typename TrieT>
void CheckTrieBatchCounters() {
  using Key = typename TrieT::KeyType;
  Rng rng(29);
  TrieT trie;
  std::vector<Key> keys;
  for (int i = 0; i < 3000; ++i) {
    // Shared-prefix clusters plus full-width keys: some probes
    // terminate early on a missing segment, some reach the leaf.
    const Key k = i % 2 == 0 ? static_cast<Key>(rng.NextBounded(4096))
                             : static_cast<Key>(rng.Next());
    keys.push_back(k);
    trie.Insert(k, static_cast<uint64_t>(i));
  }
  const auto probes = MakeProbes<Key>(keys, 400, rng);

  SearchCounters want;
  for (Key p : probes) trie.FindCounted(p, &want);
  ASSERT_GT(want.nodes_visited, 0u);

  std::vector<const uint64_t*> out(probes.size());
  for (int group : {1, 7, kMaxBatchGroup}) {
    SearchCounters got;
    trie.FindBatch(probes.data(), probes.size(), out.data(), group, &got);
    EXPECT_EQ(got.nodes_visited, want.nodes_visited) << "group=" << group;
    EXPECT_EQ(got.simd_comparisons, want.simd_comparisons)
        << "group=" << group;
    EXPECT_EQ(got.scalar_comparisons, want.scalar_comparisons)
        << "group=" << group;
  }
}

TEST(BatchCountersTest, SegTrieMatchesFindCounted) {
  CheckTrieBatchCounters<segtrie::SegTrie<uint64_t, uint64_t>>();
  CheckTrieBatchCounters<segtrie::OptimizedSegTrie<uint64_t, uint64_t>>();
}

// --- SynchronizedIndex ----------------------------------------------------

template <typename Index>
void CheckSynchronizedBatch() {
  using Key = typename Index::KeyType;
  SynchronizedIndex<Index> index;
  Rng rng(31);
  std::vector<Key> keys;
  for (int i = 0; i < 2000; ++i) {
    const Key k = static_cast<Key>(rng.NextBounded(5000));
    keys.push_back(k);
    index.Insert(k, static_cast<uint64_t>(i));
  }
  for (size_t batch : kBatchSizes) {
    const auto probes = MakeProbes<Key>(keys, batch, rng);
    std::vector<std::optional<uint64_t>> out(batch);
    index.FindBatch(probes.data(), batch, out.data());
    for (size_t i = 0; i < batch; ++i) {
      const auto want = index.Find(probes[i]);
      ASSERT_EQ(out[i].has_value(), want.has_value());
      if (want.has_value()) ASSERT_EQ(*out[i], *want);
    }
  }
}

TEST(BatchSynchronizedTest, SegTree) {
  CheckSynchronizedBatch<segtree::SegTree<uint32_t, uint64_t>>();
}

TEST(BatchSynchronizedTest, SegTrie) {
  CheckSynchronizedBatch<segtrie::SegTrie<uint64_t, uint64_t>>();
}

}  // namespace
}  // namespace simdtree
