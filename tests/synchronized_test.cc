// Concurrency tests for SynchronizedIndex: parallel readers against a
// single writer, parallel writers, and snapshot-consistent scans.
//
// Default iteration counts are sized for the fast tier-1 run
// (`ctest -LE stress`); the ctest `stress` label re-runs this binary
// with SIMDTREE_STRESS=1 for the 10x soak.

#include "core/synchronized.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"

namespace simdtree {
namespace {

// 10x the workload when SIMDTREE_STRESS is set (the ctest `stress`
// label).
int StressScale() {
  const char* env = std::getenv("SIMDTREE_STRESS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 10 : 1;
}

TEST(SynchronizedTest, SingleThreadBasics) {
  SynchronizedIndex<segtree::SegTree<uint64_t, uint64_t>> index;
  index.Insert(1, 10);
  index.Insert(2, 20);
  EXPECT_EQ(index.Find(1).value(), 10u);
  EXPECT_TRUE(index.Contains(2));
  EXPECT_FALSE(index.Contains(3));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Erase(1));
  EXPECT_EQ(index.size(), 1u);
  uint64_t sum = 0;
  index.ScanRange(0, 100, [&sum](uint64_t k, const uint64_t&) { sum += k; });
  EXPECT_EQ(sum, 2u);
  const size_t h = index.WithRead(
      [](const auto& tree) { return static_cast<size_t>(tree.height()); });
  EXPECT_EQ(h, 1u);
}

TEST(SynchronizedTest, ConcurrentReadersWithWriter) {
  SynchronizedIndex<segtree::SegTree<uint64_t, uint64_t>> index;
  for (uint64_t k = 0; k < 10000; ++k) index.Insert(k, k);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      uint64_t reads = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.NextBounded(10000);
        // Keys 0..9999 are never erased by the writer, only overwritten.
        if (!index.Contains(k)) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
        // On few cores, readers spinning on the shared lock starve the
        // writer behind glibc's reader-preferring rwlock; yielding
        // periodically keeps the test about interleaving, not about
        // scheduler-induced writer starvation.
        if (++reads % 64 == 0) std::this_thread::yield();
      }
    });
  }

  // Writer inserts a disjoint key range and overwrites existing values.
  const uint64_t writes = 2000 * static_cast<uint64_t>(StressScale());
  for (uint64_t i = 0; i < writes; ++i) {
    if (i % 2 == 0) {
      index.Insert(100000 + i, i);
    } else {
      index.Insert(i % 10000, i);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(read_errors.load(), 0u);
  const bool valid =
      index.WithRead([](const auto& tree) { return tree.Validate(); });
  EXPECT_TRUE(valid);
}

TEST(SynchronizedTest, ParallelWritersDisjointRanges) {
  SynchronizedIndex<segtrie::SegTrie<uint64_t, uint64_t>> index;
  constexpr int kThreads = 4;
  const uint64_t kPerThread = 20000 * static_cast<uint64_t>(StressScale());
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&index, t, kPerThread]() {
      const uint64_t base = static_cast<uint64_t>(t) * kPerThread;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        index.Insert(base + i, base + i);
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(index.size(), kThreads * kPerThread);
  const bool valid =
      index.WithRead([](const auto& trie) { return trie.Validate(); });
  EXPECT_TRUE(valid);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.NextBounded(kThreads * kPerThread);
    ASSERT_EQ(index.Find(k).value(), k);
  }
}

TEST(SynchronizedTest, MixedInsertEraseFromManyThreads) {
  SynchronizedIndex<btree::BPlusTree<uint64_t, uint64_t>> index;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    const int ops = 10000 * StressScale();
    workers.emplace_back([&index, t, ops]() {
      Rng rng(static_cast<uint64_t>(t) * 7 + 1);
      for (int i = 0; i < ops; ++i) {
        const uint64_t k = rng.NextBounded(512);
        if (rng.NextBounded(100) < 60) {
          index.Insert(k, static_cast<uint64_t>(i));
        } else {
          index.Erase(k);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  const bool valid =
      index.WithRead([](const auto& tree) { return tree.Validate(); });
  EXPECT_TRUE(valid);
}

}  // namespace
}  // namespace simdtree
