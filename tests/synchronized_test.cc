// Concurrency tests for SynchronizedIndex: parallel readers against a
// single writer, parallel writers, and snapshot-consistent scans.

#include "core/synchronized.h"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"

namespace simdtree {
namespace {

TEST(SynchronizedTest, SingleThreadBasics) {
  SynchronizedIndex<segtree::SegTree<uint64_t, uint64_t>> index;
  index.Insert(1, 10);
  index.Insert(2, 20);
  EXPECT_EQ(index.Find(1).value(), 10u);
  EXPECT_TRUE(index.Contains(2));
  EXPECT_FALSE(index.Contains(3));
  EXPECT_EQ(index.size(), 2u);
  EXPECT_TRUE(index.Erase(1));
  EXPECT_EQ(index.size(), 1u);
  uint64_t sum = 0;
  index.ScanRange(0, 100, [&sum](uint64_t k, const uint64_t&) { sum += k; });
  EXPECT_EQ(sum, 2u);
  const size_t h = index.WithRead(
      [](const auto& tree) { return static_cast<size_t>(tree.height()); });
  EXPECT_EQ(h, 1u);
}

TEST(SynchronizedTest, ConcurrentReadersWithWriter) {
  SynchronizedIndex<segtree::SegTree<uint64_t, uint64_t>> index;
  for (uint64_t k = 0; k < 10000; ++k) index.Insert(k, k);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t]() {
      Rng rng(static_cast<uint64_t>(t) + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t k = rng.NextBounded(10000);
        // Keys 0..9999 are never erased by the writer, only overwritten.
        if (!index.Contains(k)) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Writer inserts a disjoint key range and overwrites existing values.
  for (uint64_t i = 0; i < 20000; ++i) {
    if (i % 2 == 0) {
      index.Insert(100000 + i, i);
    } else {
      index.Insert(i % 10000, i);
    }
  }
  stop.store(true);
  for (auto& th : readers) th.join();
  EXPECT_EQ(read_errors.load(), 0u);
  const bool valid =
      index.WithRead([](const auto& tree) { return tree.Validate(); });
  EXPECT_TRUE(valid);
}

TEST(SynchronizedTest, ParallelWritersDisjointRanges) {
  SynchronizedIndex<segtrie::SegTrie<uint64_t, uint64_t>> index;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&index, t]() {
      const uint64_t base = static_cast<uint64_t>(t) * kPerThread;
      for (uint64_t i = 0; i < kPerThread; ++i) {
        index.Insert(base + i, base + i);
      }
    });
  }
  for (auto& th : writers) th.join();
  EXPECT_EQ(index.size(), kThreads * kPerThread);
  const bool valid =
      index.WithRead([](const auto& trie) { return trie.Validate(); });
  EXPECT_TRUE(valid);
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng.NextBounded(kThreads * kPerThread);
    ASSERT_EQ(index.Find(k).value(), k);
  }
}

TEST(SynchronizedTest, MixedInsertEraseFromManyThreads) {
  SynchronizedIndex<btree::BPlusTree<uint64_t, uint64_t>> index;
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&index, t]() {
      Rng rng(static_cast<uint64_t>(t) * 7 + 1);
      for (int i = 0; i < 10000; ++i) {
        const uint64_t k = rng.NextBounded(512);
        if (rng.NextBounded(100) < 60) {
          index.Insert(k, static_cast<uint64_t>(i));
        } else {
          index.Erase(k);
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  const bool valid =
      index.WithRead([](const auto& tree) { return tree.Validate(); });
  EXPECT_TRUE(valid);
}

}  // namespace
}  // namespace simdtree
