// Tests for the 512-bit register-width extension: lane/arity constants
// (k = 65/33/17/9), the lane-granular AVX-512 mask layout
// (LaneTraits::kMaskBitsPerLane == 1, a 64-bit carrier for 8-bit keys),
// bitmask evaluation over lane-granular masks, the scalar 512-bit
// backend, and k-ary search at 512-bit width. Native EVEX kernels are
// exercised through the runtime-dispatch registry in
// backend_differential_test.cc — this TU is compiled with baseline
// flags and cannot name Ops<T, kAvx512, 512> directly.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "gtest/gtest.h"
#include "kary/kary_array.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "simd/bitmask_eval.h"
#include "simd/simd512.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using simd::Backend;
using simd::LaneTraits;

TEST(Simd512Test, ArityIsTheIssueTable) {
  EXPECT_EQ((LaneTraits<int8_t, 512>::kArity), 65);
  EXPECT_EQ((LaneTraits<int16_t, 512>::kArity), 33);
  EXPECT_EQ((LaneTraits<int32_t, 512>::kArity), 17);
  EXPECT_EQ((LaneTraits<int64_t, 512>::kArity), 9);
}

TEST(Simd512Test, MaskLayoutIsLaneGranular) {
  // AVX-512 compares produce one bit per lane, not per byte; the 64
  // lanes of 8-bit keys need the 64-bit carrier, everything else fits
  // in 32 bits.
  EXPECT_EQ((LaneTraits<int8_t, 512>::kMaskBitsPerLane), 1);
  EXPECT_EQ((LaneTraits<int64_t, 512>::kMaskBitsPerLane), 1);
  EXPECT_EQ((LaneTraits<int8_t, 512>::kMaskBits), 64);
  EXPECT_EQ((LaneTraits<int16_t, 512>::kMaskBits), 32);
  EXPECT_TRUE((std::is_same_v<LaneTraits<int8_t, 512>::Mask, uint64_t>));
  EXPECT_TRUE((std::is_same_v<LaneTraits<int16_t, 512>::Mask, uint32_t>));
  EXPECT_TRUE((std::is_same_v<LaneTraits<int32_t, 512>::Mask, uint32_t>));
  // 128/256-bit layouts stay byte-granular.
  EXPECT_EQ((LaneTraits<int32_t, 128>::kMaskBitsPerLane), 4);
  EXPECT_EQ((LaneTraits<int32_t, 256>::kMaskBitsPerLane), 4);
}

// A well-formed comparison mask at position p: lanes p..kLanes-1 set
// (the c+1 valid suffix-run images of paper Algorithm 1).
template <typename T>
uint64_t SuffixMask512(int p) {
  constexpr int lanes = LaneTraits<T, 512>::kLanes;
  uint64_t mask = 0;
  for (int i = p; i < lanes; ++i) mask |= uint64_t{1} << i;
  return mask;
}

template <typename T>
void ExpectEvalsDecode512() {
  for (int p = 0; p <= LaneTraits<T, 512>::kLanes; ++p) {
    const uint64_t mask = SuffixMask512<T>(p);
    EXPECT_EQ((simd::BitShiftEval::Position<T, 512>(mask)), p) << p;
    EXPECT_EQ((simd::SwitchCaseEval::Position<T, 512>(mask)), p) << p;
    EXPECT_EQ((simd::PopcountEval::Position<T, 512>(mask)), p) << p;
  }
}

TEST(Simd512Test, BitmaskEvalsDecodeAllPositions) {
  ExpectEvalsDecode512<int8_t>();
  ExpectEvalsDecode512<uint8_t>();
  ExpectEvalsDecode512<int16_t>();
  ExpectEvalsDecode512<uint16_t>();
  ExpectEvalsDecode512<int32_t>();
  ExpectEvalsDecode512<uint32_t>();
  ExpectEvalsDecode512<int64_t>();
  ExpectEvalsDecode512<uint64_t>();
}

// The scalar 512-bit backend against a hand-rolled per-lane loop —
// mask layout, unsigned order, equality.
template <typename T>
void ExpectScalar512Masks() {
  constexpr int lanes = LaneTraits<T, 512>::kLanes;
  using Sca = simd::Ops<T, Backend::kScalar, 512>;
  Rng rng(47);
  std::vector<T> keys(static_cast<size_t>(lanes));
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    const T probe = static_cast<T>(rng.Next());
    uint64_t want_gt = 0, want_eq = 0;
    for (int i = 0; i < lanes; ++i) {
      if (keys[static_cast<size_t>(i)] > probe) want_gt |= uint64_t{1} << i;
      if (keys[static_cast<size_t>(i)] == probe) want_eq |= uint64_t{1} << i;
    }
    const auto got_gt = Sca::MoveMask(
        Sca::CmpGt(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe)));
    const auto got_eq = Sca::MoveMask(
        Sca::CmpEq(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe)));
    ASSERT_EQ(static_cast<uint64_t>(got_gt), want_gt);
    ASSERT_EQ(static_cast<uint64_t>(got_eq), want_eq);
  }
}

TEST(Simd512Test, ScalarBackendMatchesPerLaneOracle) {
  ExpectScalar512Masks<int8_t>();
  ExpectScalar512Masks<uint8_t>();
  ExpectScalar512Masks<int16_t>();
  ExpectScalar512Masks<uint16_t>();
  ExpectScalar512Masks<int32_t>();
  ExpectScalar512Masks<uint32_t>();
  ExpectScalar512Masks<int64_t>();
  ExpectScalar512Masks<uint64_t>();
}

template <typename T, Backend B>
void CheckKarySearch512() {
  Rng rng(53);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{63}, int64_t{64},
                    int64_t{65}, int64_t{100}, int64_t{1500}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());

    constexpr int arity = LaneTraits<T, 512>::kArity;
    const kary::KaryShape shape = kary::KaryShape::For(arity, n == 0 ? 1 : n);
    for (kary::Layout layout :
         {kary::Layout::kBreadthFirst, kary::Layout::kDepthFirst}) {
      const kary::Storage storage = layout == kary::Layout::kDepthFirst
                                        ? kary::Storage::kPerfect
                                        : kary::Storage::kTruncated;
      const kary::KaryLayout kl(shape, layout);
      const int64_t stored = kl.StoredSlots(n, storage);
      std::vector<T> lin(static_cast<size_t>(stored));
      kl.Linearize(keys.data(), n, lin.data(), stored, kary::PadValue<T>());

      std::vector<T> probes = keys;
      for (int i = 0; i < 100; ++i) probes.push_back(static_cast<T>(rng.Next()));
      probes.push_back(std::numeric_limits<T>::min());
      probes.push_back(std::numeric_limits<T>::max());
      for (T v : probes) {
        const int64_t expected =
            std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
        const int64_t got =
            layout == kary::Layout::kBreadthFirst
                ? kary::UpperBoundBf<T, simd::PopcountEval, B, 512>(
                      lin.data(), stored, n, v)
                : kary::UpperBoundDf<T, simd::PopcountEval, B, 512>(
                      lin.data(), stored, n, v);
        ASSERT_EQ(got, expected)
            << "n=" << n << " layout=" << kary::LayoutName(layout)
            << " v=" << static_cast<int64_t>(v);
      }
    }
  }
}

TEST(Simd512Test, KarySearchMatchesStdUpperBoundScalarBackend) {
  CheckKarySearch512<int8_t, Backend::kScalar>();
  CheckKarySearch512<uint16_t, Backend::kScalar>();
  CheckKarySearch512<int32_t, Backend::kScalar>();
  CheckKarySearch512<uint64_t, Backend::kScalar>();
}

TEST(Simd512Test, KarySearchMatchesStdUpperBoundDispatchBackend) {
  // Native EVEX on AVX-512 hosts, scalar image elsewhere — the answers
  // must be identical, so this runs (not skips) on every host.
  CheckKarySearch512<int8_t, simd::kDefaultBackend>();
  CheckKarySearch512<uint16_t, simd::kDefaultBackend>();
  CheckKarySearch512<int32_t, simd::kDefaultBackend>();
  CheckKarySearch512<uint64_t, simd::kDefaultBackend>();
}

TEST(Simd512Test, KaryArrayAt512BitWidth) {
  Rng rng(59);
  std::vector<uint32_t> keys(3000);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Next());
  std::sort(keys.begin(), keys.end());
  kary::KaryArray<uint32_t, 512> arr(keys, kary::Layout::kBreadthFirst);
  EXPECT_EQ(decltype(arr)::kArity, 17);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    const int64_t expected =
        std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
    ASSERT_EQ(arr.UpperBound(v), expected);
  }
}

}  // namespace
}  // namespace simdtree
