// Seg-Tree tests: the SIMD-searched tree must behave exactly like the
// baseline B+-Tree (same frame, different key store), across layouts,
// storage policies, key types, and randomized mutation workloads.

#include "segtree/segtree.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "segtree/seg_key_store.h"
#include "util/rng.h"

namespace simdtree::segtree {
namespace {

using kary::Layout;
using kary::Storage;

// --- SegKeyStore unit tests -------------------------------------------------

TEST(SegKeyStoreTest, AppendFastPathMatchesReordering) {
  using Store = SegKeyStore<int32_t>;
  Store::Context ctx(100, Layout::kBreadthFirst, Storage::kTruncated);
  Store appended(ctx);
  Store reordered(ctx);
  std::vector<int32_t> sorted;
  for (int32_t i = 0; i < 100; ++i) {
    appended.InsertAt(appended.count(), i * 2);  // append path
    sorted.push_back(i * 2);
    reordered.AssignSorted(sorted.data(), static_cast<int64_t>(sorted.size()));
    ASSERT_EQ(appended.count(), reordered.count());
    ASSERT_EQ(appended.stored_slots(), reordered.stored_slots());
    for (int64_t p = 0; p < appended.count(); ++p) {
      ASSERT_EQ(appended.At(p), reordered.At(p)) << "i=" << i << " p=" << p;
    }
    for (int32_t probe = -1; probe <= i * 2 + 1; ++probe) {
      ASSERT_EQ(appended.UpperBound(probe), reordered.UpperBound(probe));
    }
  }
}

TEST(SegKeyStoreTest, MiddleInsertReordersCorrectly) {
  using Store = SegKeyStore<int64_t>;
  Store::Context ctx(50, Layout::kBreadthFirst, Storage::kTruncated);
  Store store(ctx);
  std::vector<int64_t> model;
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const int64_t k = static_cast<int64_t>(rng.NextBounded(1000));
    const int64_t pos = std::upper_bound(model.begin(), model.end(), k) -
                        model.begin();
    store.InsertAt(pos, k);
    model.insert(model.begin() + pos, k);
    for (int64_t p = 0; p < store.count(); ++p) {
      ASSERT_EQ(store.At(p), model[static_cast<size_t>(p)]);
    }
  }
}

TEST(SegKeyStoreTest, RemoveMaxFastPathAndMiddleRemove) {
  using Store = SegKeyStore<uint16_t>;
  Store::Context ctx(60, Layout::kBreadthFirst, Storage::kTruncated);
  Store store(ctx);
  std::vector<uint16_t> model;
  for (uint16_t i = 0; i < 60; ++i) {
    store.InsertAt(i, static_cast<uint16_t>(i * 3));
    model.push_back(static_cast<uint16_t>(i * 3));
  }
  Rng rng(4);
  while (!model.empty()) {
    const int64_t pos =
        static_cast<int64_t>(rng.NextBounded(model.size()));
    store.RemoveAt(pos);
    model.erase(model.begin() + static_cast<ptrdiff_t>(pos));
    ASSERT_EQ(store.count(), static_cast<int64_t>(model.size()));
    for (size_t p = 0; p < model.size(); ++p) {
      ASSERT_EQ(store.At(static_cast<int64_t>(p)), model[p]);
    }
  }
}

TEST(SegKeyStoreTest, MoveSuffixAndAppendFrom) {
  using Store = SegKeyStore<int32_t>;
  Store::Context ctx(40, Layout::kDepthFirst, Storage::kPerfect);
  Store a(ctx);
  std::vector<int32_t> keys;
  for (int32_t i = 0; i < 30; ++i) keys.push_back(i * 5);
  a.AssignSorted(keys.data(), 30);
  Store b(ctx);
  a.MoveSuffixTo(b, 18);
  EXPECT_EQ(a.count(), 18);
  EXPECT_EQ(b.count(), 12);
  for (int64_t p = 0; p < 18; ++p) ASSERT_EQ(a.At(p), p * 5);
  for (int64_t p = 0; p < 12; ++p) ASSERT_EQ(b.At(p), (18 + p) * 5);
  a.AppendFrom(b);
  EXPECT_EQ(a.count(), 30);
  EXPECT_EQ(b.count(), 0);
  for (int64_t p = 0; p < 30; ++p) ASSERT_EQ(a.At(p), p * 5);
}

// --- SegTree end-to-end tests ------------------------------------------------

template <typename TreeT>
void RunModelWorkload(TreeT& tree, uint64_t seed, int key_range, int ops) {
  std::multimap<int64_t, int64_t> model;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const int64_t k = static_cast<int64_t>(
        rng.NextBounded(static_cast<uint64_t>(key_range)));
    if (rng.NextBounded(100) < 60) {
      tree.Insert(k, op);
      model.emplace(k, op);
    } else {
      const bool et = tree.Erase(k);
      auto it = model.find(k);
      const bool em = it != model.end();
      if (em) model.erase(it);
      ASSERT_EQ(et, em) << "op " << op;
    }
    if (op % 128 == 0) {
      ASSERT_TRUE(tree.Validate()) << "op " << op;
    }
  }
  ASSERT_TRUE(tree.Validate());
  ASSERT_EQ(tree.size(), model.size());
  for (int64_t k = 0; k < key_range; ++k) {
    ASSERT_EQ(tree.Count(k), model.count(k)) << "key " << k;
  }
}

TEST(SegTreeTest, BreadthFirstRandomWorkload) {
  SegTree<int64_t, int64_t, Layout::kBreadthFirst> t(8);
  RunModelWorkload(t, 1, 500, 4000);
}

TEST(SegTreeTest, DepthFirstRandomWorkload) {
  SegTree<int64_t, int64_t, Layout::kDepthFirst> t(8);
  RunModelWorkload(t, 2, 500, 4000);
}

TEST(SegTreeTest, PerfectStorageRandomWorkload) {
  SegTree<int64_t, int64_t, Layout::kBreadthFirst> t(10, Storage::kPerfect);
  RunModelWorkload(t, 3, 200, 3000);
}

TEST(SegTreeTest, SmallKeyTypeFullDomain) {
  // 8-bit keys, k = 17: a single node holds the whole domain run.
  SegTree<int8_t, int32_t> t(254);
  for (int v = -128; v < 128; ++v) {
    t.Insert(static_cast<int8_t>(v), v * 10);
  }
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.height(), 2);  // 256 keys > one node's 254
  for (int v = -128; v < 128; ++v) {
    ASSERT_EQ(t.Find(static_cast<int8_t>(v)).value(), v * 10);
  }
}

TEST(SegTreeTest, PaperConfigAscendingBuildAndProbe) {
  // 32-bit keys with the Table 3 capacity (338); ascending build exercises
  // the append fast path in every node.
  SegTree<int32_t, int32_t> t;
  constexpr int32_t kN = 100000;
  for (int32_t i = 0; i < kN; ++i) t.Insert(i, i);
  ASSERT_TRUE(t.Validate());
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const int32_t probe = static_cast<int32_t>(rng.NextBounded(kN));
    ASSERT_EQ(t.Find(probe).value(), probe);
  }
  EXPECT_FALSE(t.Contains(kN));
  EXPECT_FALSE(t.Contains(-1));
}

TEST(SegTreeTest, BulkLoadMatchesInserts) {
  std::vector<uint64_t> keys(20000);
  std::vector<int64_t> values(20000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = static_cast<uint64_t>(i) * 7;
    values[i] = static_cast<int64_t>(i);
  }
  auto loaded = SegTree<uint64_t, int64_t>::BulkLoad(
      keys.data(), values.data(), keys.size());
  ASSERT_TRUE(loaded.Validate());
  EXPECT_EQ(loaded.size(), keys.size());
  for (size_t i = 0; i < keys.size(); i += 13) {
    ASSERT_EQ(loaded.Find(keys[i]).value(), values[i]);
    ASSERT_FALSE(loaded.Contains(keys[i] + 1));
  }
}

TEST(SegTreeTest, AgreesWithBaselineOnSameWorkload) {
  btree::BPlusTree<int16_t, int32_t> baseline(40);
  SegTree<int16_t, int32_t, Layout::kBreadthFirst> bf(40);
  SegTree<int16_t, int32_t, Layout::kDepthFirst> df(40);
  Rng rng(11);
  for (int op = 0; op < 5000; ++op) {
    const int16_t k = static_cast<int16_t>(rng.Next());
    const int32_t v = static_cast<int32_t>(op);
    if (rng.NextBounded(100) < 70) {
      baseline.Insert(k, v);
      bf.Insert(k, v);
      df.Insert(k, v);
    } else {
      const bool a = baseline.Erase(k);
      const bool b = bf.Erase(k);
      const bool c = df.Erase(k);
      ASSERT_EQ(a, b);
      ASSERT_EQ(a, c);
    }
  }
  ASSERT_EQ(baseline.size(), bf.size());
  ASSERT_EQ(baseline.size(), df.size());
  ASSERT_TRUE(bf.Validate());
  ASSERT_TRUE(df.Validate());
  for (int v = -32768; v < 32768; v += 17) {
    const int16_t k = static_cast<int16_t>(v);
    ASSERT_EQ(baseline.Contains(k), bf.Contains(k)) << v;
    ASSERT_EQ(baseline.Count(k), df.Count(k)) << v;
  }
}

TEST(SegTreeTest, RangeScansMatchBaseline) {
  btree::BPlusTree<uint32_t, uint32_t> baseline(16);
  SegTree<uint32_t, uint32_t> seg(16);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t k = static_cast<uint32_t>(rng.NextBounded(10000));
    baseline.Insert(k, k);
    seg.Insert(k, k);
  }
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t lo = static_cast<uint32_t>(rng.NextBounded(10000));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.NextBounded(2000));
    std::vector<uint32_t> a, b;
    baseline.ScanRange(lo, hi, [&](uint32_t k, uint32_t) { a.push_back(k); });
    seg.ScanRange(lo, hi, [&](uint32_t k, uint32_t) { b.push_back(k); });
    ASSERT_EQ(a, b) << "lo=" << lo << " hi=" << hi;
  }
}

TEST(SegTreeTest, AllEvalPoliciesProduceIdenticalTrees) {
  SegTree<int32_t, int32_t, Layout::kBreadthFirst, simd::BitShiftEval> a(12);
  SegTree<int32_t, int32_t, Layout::kBreadthFirst, simd::SwitchCaseEval> b(12);
  SegTree<int32_t, int32_t, Layout::kBreadthFirst, simd::PopcountEval> c(12);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const int32_t k = static_cast<int32_t>(rng.NextBounded(700));
    a.Insert(k, i);
    b.Insert(k, i);
    c.Insert(k, i);
  }
  for (int32_t k = 0; k < 700; ++k) {
    ASSERT_EQ(a.Count(k), b.Count(k));
    ASSERT_EQ(b.Count(k), c.Count(k));
  }
}

TEST(SegTreeTest, ScalarBackendBehavesLikeSse) {
  SegTree<int64_t, int64_t, Layout::kBreadthFirst, simd::PopcountEval,
          simd::Backend::kScalar>
      scalar_tree(8);
  RunModelWorkload(scalar_tree, 19, 300, 3000);
}

TEST(SegTreeTest, TypeMaxKeysCollideWithPadding) {
  // Keys equal to the padding value must still be stored and found.
  SegTree<uint8_t, int32_t> t(20);
  for (int i = 0; i < 10; ++i) t.Insert(255, i);
  t.Insert(0, -1);
  t.Insert(254, -2);
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.Count(255), 10u);
  EXPECT_TRUE(t.Contains(0));
  EXPECT_TRUE(t.Contains(254));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(t.Erase(255));
  EXPECT_FALSE(t.Contains(255));
  EXPECT_EQ(t.size(), 2u);
}

}  // namespace
}  // namespace simdtree::segtree
