// Unit tests for the compact single-allocation trie node: block layout,
// relocation on growth, append/remove fast paths, SIMD search, and the
// full-node direct-index fast path.

#include "segtrie/compact_node.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree::segtrie {
namespace {

using Ctx = CompactNodeContext<uint8_t>;
using Node = CompactTrieNode<uint8_t, uint64_t>;

TEST(CompactNodeTest, MakeSingleHoldsOnePair) {
  Ctx ctx(256);
  Node* n = Node::MakeSingle(ctx, 42, 4200);
  EXPECT_EQ(n->count(), 1);
  EXPECT_EQ(n->PartialAt(ctx, 0), 42);
  EXPECT_EQ(n->EntryAt(0), 4200u);
  EXPECT_EQ(n->FindPartial(ctx, 42), 0);
  EXPECT_EQ(n->FindPartial(ctx, 41), -1);
  EXPECT_EQ(n->FindPartial(ctx, 43), -1);
  Node::Free(ctx, n);
}

TEST(CompactNodeTest, AscendingInsertsGrowAndStaySorted) {
  Ctx ctx(256);
  Node* n = Node::MakeSingle(ctx, 0, 0);
  for (int i = 1; i < 256; ++i) {
    n = Node::Insert(n, ctx, i, static_cast<uint8_t>(i),
                     static_cast<uint64_t>(i) * 10);
  }
  ASSERT_EQ(n->count(), 256);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(n->PartialAt(ctx, i), static_cast<uint8_t>(i));
    ASSERT_EQ(n->EntryAt(i), static_cast<uint64_t>(i) * 10);
  }
  // Full node: FindPartial takes the hash-like direct-index path.
  for (int p = 0; p < 256; ++p) {
    ASSERT_EQ(n->FindPartial(ctx, static_cast<uint8_t>(p)), p);
  }
  Node::Free(ctx, n);
}

TEST(CompactNodeTest, RandomInsertRemoveMatchesModel) {
  Ctx ctx(256);
  Rng rng(7);
  Node* n = nullptr;
  std::vector<std::pair<uint8_t, uint64_t>> model;
  for (int op = 0; op < 3000; ++op) {
    const uint8_t p = static_cast<uint8_t>(rng.Next());
    auto it = std::lower_bound(
        model.begin(), model.end(), p,
        [](const auto& a, uint8_t b) { return a.first < b; });
    const bool present = it != model.end() && it->first == p;
    if (rng.NextBounded(100) < 60) {
      if (present) continue;  // node stores distinct partials
      const int64_t pos = it - model.begin();
      if (n == nullptr) {
        n = Node::MakeSingle(ctx, p, op);
      } else {
        n = Node::Insert(n, ctx, pos, p, static_cast<uint64_t>(op));
      }
      model.insert(it, {p, static_cast<uint64_t>(op)});
    } else if (present) {
      const int64_t pos = it - model.begin();
      Node::Remove(n, ctx, pos);
      model.erase(it);
    }
    if (n != nullptr) {
      ASSERT_EQ(n->count(), static_cast<int64_t>(model.size()));
      for (size_t i = 0; i < model.size(); ++i) {
        ASSERT_EQ(n->PartialAt(ctx, static_cast<int64_t>(i)),
                  model[i].first);
        ASSERT_EQ(n->EntryAt(static_cast<int64_t>(i)), model[i].second);
      }
    }
  }
  if (n != nullptr) Node::Free(ctx, n);
}

TEST(CompactNodeTest, UpperBoundMatchesStdUpperBound) {
  Ctx ctx(256);
  Rng rng(9);
  std::vector<uint8_t> sorted;
  Node* n = nullptr;
  for (int i = 0; i < 100; ++i) {
    const uint8_t p = static_cast<uint8_t>(rng.Next());
    auto it = std::lower_bound(sorted.begin(), sorted.end(), p);
    if (it != sorted.end() && *it == p) continue;
    const int64_t pos = it - sorted.begin();
    n = n == nullptr ? Node::MakeSingle(ctx, p, 0)
                     : Node::Insert(n, ctx, pos, p, 0);
    sorted.insert(it, p);
    for (int v = 0; v < 256; ++v) {
      const uint8_t probe = static_cast<uint8_t>(v);
      const int64_t expected =
          std::upper_bound(sorted.begin(), sorted.end(), probe) -
          sorted.begin();
      ASSERT_EQ(n->UpperBound(ctx, probe), expected)
          << "probe " << v << " count " << sorted.size();
    }
  }
  Node::Free(ctx, n);
}

TEST(CompactNodeTest, MemoryGrowsGeometrically) {
  Ctx ctx(256);
  Node* n = Node::MakeSingle(ctx, 0, 0);
  size_t last = n->MemoryBytes();
  size_t growths = 0;
  for (int i = 1; i < 256; ++i) {
    n = Node::Insert(n, ctx, i, static_cast<uint8_t>(i), 0);
    if (n->MemoryBytes() != last) {
      ++growths;
      last = n->MemoryBytes();
    }
  }
  // Geometric growth: far fewer reallocations than inserts.
  EXPECT_LE(growths, 10u);
  Node::Free(ctx, n);
}

TEST(CompactNodeTest, OddSizedValueEntries) {
  // 12-byte trivially-copyable entries exercise the alignment math.
  struct Payload {
    uint32_t a;
    uint32_t b;
    uint32_t c;
  };
  CompactNodeContext<uint8_t> ctx(256);
  using PNode = CompactTrieNode<uint8_t, Payload>;
  PNode* n = PNode::MakeSingle(ctx, 9, Payload{1, 2, 3});
  for (int i = 0; i < 50; ++i) {
    const uint8_t p = static_cast<uint8_t>(10 + i);
    n = PNode::Insert(n, ctx, n->count(), p,
                      Payload{static_cast<uint32_t>(i), 0, 7});
  }
  ASSERT_EQ(n->count(), 51);
  EXPECT_EQ(n->EntryAt(0).c, 3u);
  EXPECT_EQ(n->EntryAt(50).a, 49u);
  EXPECT_EQ(n->EntryAt(50).c, 7u);
  PNode::Free(ctx, n);
}

TEST(CompactNodeTest, SixteenBitPartials) {
  // 4-bit-segment tries use uint8 partials with a 16-value domain; 16-bit
  // segment tries use uint16 partials with a 65536-value domain.
  CompactNodeContext<uint16_t> ctx(65536);
  using WNode = CompactTrieNode<uint16_t, uint64_t>;
  WNode* n = WNode::MakeSingle(ctx, 1000, 1);
  for (int i = 0; i < 2000; ++i) {
    n = WNode::Insert(n, ctx, n->count(),
                      static_cast<uint16_t>(1001 + i * 3),
                      static_cast<uint64_t>(i));
  }
  ASSERT_EQ(n->count(), 2001);
  EXPECT_EQ(n->FindPartial(ctx, 1000), 0);
  EXPECT_EQ(n->FindPartial(ctx, 1001), 1);
  EXPECT_EQ(n->FindPartial(ctx, 1002), -1);
  EXPECT_EQ(n->FindPartial(ctx, static_cast<uint16_t>(1001 + 1999 * 3)),
            2000);
  WNode::Free(ctx, n);
}

}  // namespace
}  // namespace simdtree::segtrie
