// End-to-end KV server tests (net/server.h): a live KvServer on an
// ephemeral loopback port over a ShardedIndex<SegTree>, with every
// reply differentially verified against direct index calls — the
// acceptance gate for the serving path. Covers pipelined mixed
// read/write ordering, the coalesced read path, malformed/oversized/
// unknown-opcode frames, STATS, metrics registration, timeouts,
// graceful drain, and a multi-client concurrent soak (10x under
// SIMDTREE_STRESS=1).

#include "net/server.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/backend.h"
#include "net/client.h"
#include "net/protocol.h"
#include "obs/metrics.h"
#include "segtree/segtree.h"
#include "util/rng.h"

namespace simdtree::net {
namespace {

using Tree = segtree::SegTree<uint64_t, uint64_t>;

bool StressMode() {
  const char* env = std::getenv("SIMDTREE_STRESS");
  return env != nullptr && env[0] == '1';
}

class KvServerTest : public ::testing::Test {
 protected:
  // Even keys 2..2n store value key*10; odd keys miss.
  void BuildIndex(size_t n) {
    keys_.resize(n);
    for (size_t i = 0; i < n; ++i) keys_[i] = 2 * (i + 1);
    index_ = std::make_unique<ShardedIndex<Tree>>(
        4, ShardedIndex<Tree>::SplittersFromSample(keys_.data(),
                                                   keys_.size(), 4));
    for (uint64_t k : keys_) index_->Insert(k, k * 10);
    backend_ = std::make_unique<ShardedKvBackend<Tree>>(index_.get());
  }

  void StartServer(KvServerOptions opts = {}) {
    server_ = std::make_unique<KvServer>(backend_.get());
    ASSERT_TRUE(server_->Start(opts)) << server_->error();
    ASSERT_NE(server_->port(), 0);
  }

  void Connect(KvClient* client) {
    ASSERT_TRUE(client->Connect("127.0.0.1", server_->port()))
        << client->error();
  }

  std::vector<uint64_t> keys_;
  std::unique_ptr<ShardedIndex<Tree>> index_;
  std::unique_ptr<ShardedKvBackend<Tree>> backend_;
  std::unique_ptr<KvServer> server_;
};

TEST_F(KvServerTest, GetDifferential) {
  BuildIndex(2000);
  StartServer();
  KvClient client;
  Connect(&client);

  Rng rng(1);
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = rng.NextBounded(2 * keys_.size() + 10);
    const std::optional<uint64_t> direct = index_->Find(key);
    const std::optional<uint64_t> wire = client.Get(key);
    ASSERT_EQ(wire.has_value(), direct.has_value()) << "key " << key;
    if (direct.has_value()) {
      ASSERT_EQ(*wire, *direct) << "key " << key;
    }
  }
}

TEST_F(KvServerTest, MgetDifferential) {
  BuildIndex(1000);
  StartServer();
  KvClient client;
  Connect(&client);

  Rng rng(2);
  std::vector<uint64_t> probe(64);
  for (auto& k : probe) k = rng.NextBounded(2 * keys_.size() + 10);
  std::vector<MgetEntry> entries;
  ASSERT_TRUE(client.Mget(probe, &entries)) << client.error();
  ASSERT_EQ(entries.size(), probe.size());

  std::vector<std::optional<uint64_t>> direct(probe.size());
  index_->FindBatch(probe.data(), probe.size(), direct.data());
  for (size_t i = 0; i < probe.size(); ++i) {
    ASSERT_EQ(entries[i].found, direct[i].has_value()) << "slot " << i;
    if (direct[i].has_value()) {
      ASSERT_EQ(entries[i].value, *direct[i]) << "slot " << i;
    }
  }
}

TEST_F(KvServerTest, LowerBoundDifferential) {
  BuildIndex(1000);
  StartServer();
  KvClient client;
  Connect(&client);

  // Reference: binary search over the sorted stored keys.
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t probe = rng.NextBounded(2 * keys_.size() + 20);
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), probe);
    uint64_t k = 0, v = 0;
    bool found = false;
    ASSERT_TRUE(client.LowerBound(probe, &k, &v, &found))
        << client.error();
    ASSERT_EQ(found, it != keys_.end()) << "probe " << probe;
    if (found) {
      ASSERT_EQ(k, *it) << "probe " << probe;
      ASSERT_EQ(v, *it * 10) << "probe " << probe;
    }
  }
  // Past the maximum stored key: no lower bound.
  uint64_t k = 0, v = 0;
  bool found = true;
  ASSERT_TRUE(client.LowerBound(keys_.back() + 1, &k, &v, &found));
  EXPECT_FALSE(found);
}

TEST_F(KvServerTest, PipelinedMixedReadWriteOrdering) {
  BuildIndex(100);
  StartServer();
  KvClient client;
  Connect(&client);

  // One pipeline: the write-barrier contract — GET after PUT of the same
  // key (and after DEL) must observe the earlier op of its own pipeline.
  const uint64_t fresh = 1000001;  // odd: not preloaded
  const uint32_t id_get0 = client.EnqueueGet(fresh);
  const uint32_t id_put = client.EnqueuePut(fresh, 555);
  const uint32_t id_get1 = client.EnqueueGet(fresh);
  const uint32_t id_del = client.EnqueueDel(fresh);
  const uint32_t id_get2 = client.EnqueueGet(fresh);
  ASSERT_TRUE(client.Flush()) << client.error();

  Response r;
  ASSERT_TRUE(client.ReadReply(&r));
  EXPECT_EQ(r.request_id, id_get0);
  EXPECT_FALSE(r.found);

  ASSERT_TRUE(client.ReadReply(&r));
  EXPECT_EQ(r.request_id, id_put);
  EXPECT_EQ(r.status, kStatusOk);

  ASSERT_TRUE(client.ReadReply(&r));
  EXPECT_EQ(r.request_id, id_get1);
  ASSERT_TRUE(r.found);  // sees its own pipelined write
  EXPECT_EQ(r.value, 555u);

  ASSERT_TRUE(client.ReadReply(&r));
  EXPECT_EQ(r.request_id, id_del);
  EXPECT_TRUE(r.found);  // erased

  ASSERT_TRUE(client.ReadReply(&r));
  EXPECT_EQ(r.request_id, id_get2);
  EXPECT_FALSE(r.found);  // sees its own pipelined delete

  // The server state matches the direct view afterwards.
  EXPECT_FALSE(index_->Find(fresh).has_value());
}

TEST_F(KvServerTest, DeepPipelineCoalescesAndMatchesDirect) {
  BuildIndex(4000);
  StartServer();
  KvClient client;
  Connect(&client);

  auto* hist =
      obs::MetricsRegistry::Global().GetHistogram("net.coalesced_batch");
  const uint64_t batches_before = hist->Count();

  // 512 GETs in one burst: the server should fold the run into few
  // FindBatch calls (one per read gulp), not 512 single lookups.
  Rng rng(4);
  std::vector<uint64_t> probe(512);
  std::vector<uint32_t> ids(probe.size());
  for (size_t i = 0; i < probe.size(); ++i) {
    probe[i] = rng.NextBounded(2 * keys_.size() + 10);
    ids[i] = client.EnqueueGet(probe[i]);
  }
  ASSERT_TRUE(client.Flush()) << client.error();

  std::vector<std::optional<uint64_t>> direct(probe.size());
  index_->FindBatch(probe.data(), probe.size(), direct.data());

  for (size_t i = 0; i < probe.size(); ++i) {
    Response r;
    ASSERT_TRUE(client.ReadReply(&r)) << client.error();
    ASSERT_EQ(r.request_id, ids[i]);  // replies in request order
    ASSERT_EQ(r.found, direct[i].has_value()) << "slot " << i;
    if (direct[i].has_value()) {
      ASSERT_EQ(r.value, *direct[i]);
    }
  }

  const uint64_t batches_after = hist->Count();
  ASSERT_GT(batches_after, batches_before);
  // Far fewer batches than requests proves the run coalesced.
  EXPECT_LT(batches_after - batches_before, probe.size() / 4);
}

TEST_F(KvServerTest, MalformedFrameGetsTypedErrorAndConnectionSurvives) {
  BuildIndex(100);
  StartServer();
  KvClient client;
  Connect(&client);

  // GET with a 7-byte key: parseable header, malformed body.
  std::vector<uint8_t> bad;
  PutU32(&bad, 5 + 7);
  PutU8(&bad, kOpGet);
  PutU32(&bad, 9001);
  for (int i = 0; i < 7; ++i) PutU8(&bad, 0);
  ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()));

  Response r;
  ASSERT_TRUE(client.ReadReply(&r)) << client.error();
  EXPECT_EQ(r.status, kStatusMalformed);
  EXPECT_EQ(r.opcode, kOpGet);
  EXPECT_EQ(r.request_id, 9001u);

  // The stream is still framed: a valid request afterwards works.
  const std::optional<uint64_t> v = client.Get(2);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 20u);
}

TEST_F(KvServerTest, UnknownOpcodeGetsTypedError) {
  BuildIndex(10);
  StartServer();
  KvClient client;
  Connect(&client);

  std::vector<uint8_t> bad;
  PutU32(&bad, 5);
  PutU8(&bad, 0x7E);
  PutU32(&bad, 777);
  ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()));

  Response r;
  ASSERT_TRUE(client.ReadReply(&r)) << client.error();
  EXPECT_EQ(r.status, kStatusUnknownOp);
  EXPECT_EQ(r.request_id, 777u);
}

TEST_F(KvServerTest, OversizedFrameRejectsAndCloses) {
  BuildIndex(10);
  StartServer();
  KvClient client;
  Connect(&client);

  std::vector<uint8_t> bad;
  PutU32(&bad, static_cast<uint32_t>(kMaxFrameBytes) + 1);
  ASSERT_TRUE(client.SendRaw(bad.data(), bad.size()));

  Response r;
  ASSERT_TRUE(client.ReadReply(&r)) << client.error();
  EXPECT_EQ(r.status, kStatusTooLarge);

  // The stream cannot be resynced, so the server hangs up.
  EXPECT_FALSE(client.ReadReply(&r));
}

TEST_F(KvServerTest, StatsReturnsRegistryJson) {
  BuildIndex(10);
  StartServer();
  KvClient client;
  Connect(&client);

  std::string json;
  ASSERT_TRUE(client.Stats(&json)) << client.error();
  EXPECT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("counters"), std::string::npos);
}

TEST_F(KvServerTest, NetMetricsRegistered) {
  BuildIndex(100);
  StartServer();
  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t accepted_before = reg.GetCounter("net.accepted")->Get();
  const uint64_t requests_before = reg.GetCounter("net.requests")->Get();
  {
    KvClient client;
    Connect(&client);
    for (int i = 0; i < 10; ++i) ASSERT_TRUE(client.Get(2).has_value());
  }
  EXPECT_GT(reg.GetCounter("net.accepted")->Get(), accepted_before);
  EXPECT_GE(reg.GetCounter("net.requests")->Get(), requests_before + 10);
  EXPECT_GT(reg.GetHistogram("net.op_get_ns")->Count(), 0u);
}

TEST_F(KvServerTest, GracefulDrainAnswersInFlightPipeline) {
  BuildIndex(1000);
  StartServer();
  KvClient client;
  Connect(&client);

  // A burst in flight when Stop() lands: every already-received request
  // must still be answered before the connection closes.
  std::vector<uint32_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(client.EnqueueGet(keys_[static_cast<size_t>(i)]));
  }
  ASSERT_TRUE(client.Flush()) << client.error();
  server_->Stop();

  for (uint32_t id : ids) {
    Response r;
    ASSERT_TRUE(client.ReadReply(&r)) << client.error();
    ASSERT_EQ(r.request_id, id);
    ASSERT_EQ(r.status, kStatusOk);
    ASSERT_TRUE(r.found);
  }
  // After the drain the port stops accepting.
  KvClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", server_->port()));
}

TEST_F(KvServerTest, IdleTimeoutClosesConnection) {
  BuildIndex(10);
  KvServerOptions opts;
  opts.idle_timeout_ms = 150;
  StartServer(opts);
  KvClient client;
  Connect(&client);
  ASSERT_TRUE(client.Get(2).has_value());

  // Silence beyond the idle limit: the server hangs up.
  Response r;
  EXPECT_FALSE(client.ReadReply(&r, /*timeout_ms=*/2000));
  EXPECT_FALSE(client.connected());
  EXPECT_GT(obs::MetricsRegistry::Global().GetCounter("net.timeouts")->Get(),
            0u);
}

TEST_F(KvServerTest, StalledPartialFrameTimesOut) {
  BuildIndex(10);
  KvServerOptions opts;
  opts.request_timeout_ms = 150;
  StartServer(opts);
  KvClient client;
  Connect(&client);

  // Half a frame, then silence: the incomplete frame must not pin the
  // connection open past request_timeout_ms.
  std::vector<uint8_t> full;
  AppendGet(&full, 1, 42);
  ASSERT_TRUE(client.SendRaw(full.data(), full.size() / 2));
  Response r;
  EXPECT_FALSE(client.ReadReply(&r, /*timeout_ms=*/2000));
  EXPECT_FALSE(client.connected());
}

TEST_F(KvServerTest, ConcurrentClientsSoak) {
  const size_t preload = 4000;
  BuildIndex(preload);
  KvServerOptions opts;
  opts.num_workers = 2;
  StartServer(opts);

  const int kClients = 4;
  const int ops_per_client = StressMode() ? 20000 : 2000;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      KvClient client;
      if (!client.Connect("127.0.0.1", server_->port())) {
        failures[static_cast<size_t>(t)] = client.error();
        return;
      }
      // Each client owns a private fresh-key range for writes, so its
      // view is deterministic even with the other clients running.
      const uint64_t base =
          1000001 + static_cast<uint64_t>(t) * 1000000;
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < ops_per_client; ++i) {
        const int op = static_cast<int>(rng.NextBounded(10));
        if (op < 6) {  // preloaded read: always a hit
          const uint64_t k =
              keys_[rng.NextBounded(preload)];
          const std::optional<uint64_t> v = client.Get(k);
          if (!v.has_value() || *v != k * 10) {
            failures[static_cast<size_t>(t)] = "bad GET";
            return;
          }
        } else if (op < 8) {  // private write + readback
          const uint64_t k = base + rng.NextBounded(1000);
          if (!client.Put(k, k + 1)) {
            failures[static_cast<size_t>(t)] = "PUT failed";
            return;
          }
          const std::optional<uint64_t> v = client.Get(k);
          if (!v.has_value() || *v != k + 1) {
            failures[static_cast<size_t>(t)] = "readback mismatch";
            return;
          }
          client.Del(k);  // keep the private range from growing
        } else {  // pipelined burst of preloaded reads
          std::vector<uint32_t> ids;
          std::vector<uint64_t> probe;
          for (int j = 0; j < 32; ++j) {
            probe.push_back(keys_[rng.NextBounded(preload)]);
            ids.push_back(client.EnqueueGet(probe.back()));
          }
          if (!client.Flush()) {
            failures[static_cast<size_t>(t)] = "flush failed";
            return;
          }
          for (size_t j = 0; j < ids.size(); ++j) {
            Response r;
            if (!client.ReadReply(&r) || r.request_id != ids[j] ||
                !r.found || r.value != probe[j] * 10) {
              failures[static_cast<size_t>(t)] = "pipeline mismatch";
              return;
            }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kClients; ++t) {
    EXPECT_TRUE(failures[static_cast<size_t>(t)].empty())
        << "client " << t << ": " << failures[static_cast<size_t>(t)];
  }
}

}  // namespace
}  // namespace simdtree::net
