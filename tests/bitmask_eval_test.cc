// The three bitmask-evaluation algorithms (paper Algorithms 1-3) must
// agree with each other and with the definition "index of the first
// greater key" on every mask a sorted-lane comparison can produce.

#include "simd/bitmask_eval.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace simdtree::simd {
namespace {

// Mask with lanes p..kLanes-1 set (the only masks a greater-than compare of
// sorted lanes can yield).
template <typename T>
uint32_t SwitchPointMask(int p) {
  constexpr int lanes = LaneTraits<T>::kLanes;
  constexpr int stride = LaneTraits<T>::kBytesPerLane;
  uint32_t mask = 0;
  for (int i = p; i < lanes; ++i) {
    mask |= ((1u << stride) - 1u) << (i * stride);
  }
  return mask;
}

template <typename T>
void ExpectAllAlgorithmsDecodeEveryPosition() {
  constexpr int lanes = LaneTraits<T>::kLanes;
  for (int p = 0; p <= lanes; ++p) {
    const uint32_t mask = SwitchPointMask<T>(p);
    EXPECT_EQ(BitShiftEval::Position<T>(mask), p) << "mask=" << mask;
    EXPECT_EQ(SwitchCaseEval::Position<T>(mask), p) << "mask=" << mask;
    EXPECT_EQ(PopcountEval::Position<T>(mask), p) << "mask=" << mask;
  }
}

TEST(BitmaskEvalTest, Decodes8BitMasks) {
  ExpectAllAlgorithmsDecodeEveryPosition<int8_t>();
  ExpectAllAlgorithmsDecodeEveryPosition<uint8_t>();
}

TEST(BitmaskEvalTest, Decodes16BitMasks) {
  ExpectAllAlgorithmsDecodeEveryPosition<int16_t>();
  ExpectAllAlgorithmsDecodeEveryPosition<uint16_t>();
}

TEST(BitmaskEvalTest, Decodes32BitMasks) {
  ExpectAllAlgorithmsDecodeEveryPosition<int32_t>();
  ExpectAllAlgorithmsDecodeEveryPosition<uint32_t>();
}

TEST(BitmaskEvalTest, Decodes64BitMasks) {
  ExpectAllAlgorithmsDecodeEveryPosition<int64_t>();
  ExpectAllAlgorithmsDecodeEveryPosition<uint64_t>();
}

TEST(BitmaskEvalTest, PaperExampleFigure1) {
  // Figure 1: 32-bit keys, bitmask 0xF000 -> position 3.
  EXPECT_EQ(BitShiftEval::Position<int32_t>(0xF000u), 3);
  EXPECT_EQ(SwitchCaseEval::Position<int32_t>(0xF000u), 3);
  EXPECT_EQ(PopcountEval::Position<int32_t>(0xF000u), 3);
}

TEST(BitmaskEvalTest, AllGreaterAndNoneGreaterExtremes) {
  EXPECT_EQ(PopcountEval::Position<int32_t>(0xFFFFu), 0);
  EXPECT_EQ(PopcountEval::Position<int32_t>(0x0000u), 4);
  EXPECT_EQ(BitShiftEval::Position<int64_t>(0xFFFFu), 0);
  EXPECT_EQ(SwitchCaseEval::Position<int8_t>(0x0000u), 16);
}

TEST(BitmaskEvalTest, NamesAreDistinct) {
  EXPECT_STRNE(BitShiftEval::kName, SwitchCaseEval::kName);
  EXPECT_STRNE(SwitchCaseEval::kName, PopcountEval::kName);
}

}  // namespace
}  // namespace simdtree::simd
