// Request-span recorder tests (obs/request_trace.h) plus the
// end-to-end differential acceptance test for the observability path:
// a deliberately stalled request (KvServerOptions test hook) must be
// tail-retained with all five span kinds, appear in the /requestz
// payload, and surface its trace id as an OpenMetrics exemplar in the
// per-op latency bucket that contains its service time. Also covers
// the drain-aware /healthz surface.

#include "obs/request_trace.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/backend.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_server.h"
#include "segtree/segtree.h"

namespace simdtree::obs {
namespace {

using Tree = segtree::SegTree<uint64_t, uint64_t>;

RequestTrace MakeTrace(RequestTracer& tracer, uint64_t latency_ns) {
  RequestTrace t;
  t.trace_id = tracer.NextTraceId();
  t.latency_ns = latency_ns;
  t.service_ns = latency_ns / 2;
  AppendRequestSpan(&t, RequestSpanKind::kSocketRead, 0, 100);
  return t;
}

TEST(RequestTracerTest, DisarmedByDefaultAndAfterZeroConfigure) {
  auto& tracer = RequestTracer::Global();
  tracer.Reset();
  tracer.Configure(0, 0);
  EXPECT_FALSE(tracer.enabled());

  // Finish on a disarmed tracer retains nothing.
  RequestTrace t = MakeTrace(tracer, 1000);
  EXPECT_FALSE(tracer.Finish(&t));
  EXPECT_EQ(tracer.retained(), 0u);
}

TEST(RequestTracerTest, HeadSamplingIsDeterministic1InN) {
  auto& tracer = RequestTracer::Global();
  tracer.Reset();
  tracer.Configure(4, 0);
  ASSERT_TRUE(tracer.enabled());

  int kept = 0;
  for (int i = 0; i < 100; ++i) {
    RequestTrace t = MakeTrace(tracer, 1000);
    if (tracer.Finish(&t)) ++kept;
  }
  // Deterministic modulo on the completed counter: exactly 1 in 4.
  EXPECT_EQ(kept, 25);
  EXPECT_EQ(tracer.completed(), 100u);
  EXPECT_EQ(tracer.retained(), 25u);
  EXPECT_EQ(tracer.slow_retained(), 0u);
  EXPECT_EQ(tracer.Snapshot().size(), 25u);
  tracer.Configure(0, 0);
}

TEST(RequestTracerTest, SlowThresholdAlwaysRetains) {
  auto& tracer = RequestTracer::Global();
  tracer.Reset();
  // Head sampling off: only the slow threshold retains.
  tracer.Configure(0, 5000);
  ASSERT_TRUE(tracer.enabled());

  for (int i = 0; i < 20; ++i) {
    RequestTrace fast = MakeTrace(tracer, 1000);
    EXPECT_FALSE(tracer.Finish(&fast));
  }
  RequestTrace slow = MakeTrace(tracer, 9000);
  const uint64_t slow_id = slow.trace_id;
  EXPECT_TRUE(tracer.Finish(&slow));
  EXPECT_EQ(slow.slow, 1u);

  EXPECT_EQ(tracer.slow_retained(), 1u);
  const auto log = tracer.SlowSnapshot();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].trace_id, slow_id);
  EXPECT_EQ(log[0].latency_ns, 9000u);
  tracer.Configure(0, 0);
}

TEST(RequestTracerTest, TraceIdsAreUniqueAndNonzero) {
  auto& tracer = RequestTracer::Global();
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = tracer.NextTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(CollectedSpanScopeTest, DisarmedRecordsNothing) {
  SetActiveSpanCollector(nullptr);
  { CollectedSpanScope scope(RequestSpanKind::kDescent); }
  // Nothing to observe — the contract is simply "no crash, no
  // collector writes"; an armed collector below proves the positive.
  SUCCEED();
}

TEST(CollectedSpanScopeTest, ArmedCollectsKindsInOrder) {
  SpanCollector collector;
  SetActiveSpanCollector(&collector);
  { CollectedSpanScope fanout(RequestSpanKind::kShardFanout); }
  { CollectedSpanScope descent(RequestSpanKind::kDescent); }
  SetActiveSpanCollector(nullptr);

  ASSERT_EQ(collector.count, 2);
  EXPECT_EQ(collector.spans[0].kind,
            static_cast<uint8_t>(RequestSpanKind::kShardFanout));
  EXPECT_EQ(collector.spans[1].kind,
            static_cast<uint8_t>(RequestSpanKind::kDescent));
  // Spans carry monotone timestamps.
  EXPECT_GE(collector.spans[1].start_ns, collector.spans[0].start_ns);
}

TEST(CollectedSpanScopeTest, CollectorCapsAtFixedSize) {
  SpanCollector collector;
  SetActiveSpanCollector(&collector);
  for (int i = 0; i < 10; ++i) {
    CollectedSpanScope scope(RequestSpanKind::kDescent);
  }
  SetActiveSpanCollector(nullptr);
  EXPECT_EQ(collector.count, 4);
}

// --- end-to-end: the stalled-request differential test -----------------

class RequestSpanEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RequestTracer::Global().Reset();
    keys_.resize(512);
    for (size_t i = 0; i < keys_.size(); ++i) keys_[i] = 2 * (i + 1);
    index_ = std::make_unique<ShardedIndex<Tree>>(
        4, ShardedIndex<Tree>::SplittersFromSample(keys_.data(),
                                                   keys_.size(), 4));
    for (uint64_t k : keys_) index_->Insert(k, k * 10);
    backend_ = std::make_unique<net::ShardedKvBackend<Tree>>(index_.get());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    RequestTracer::Global().Configure(0, 0);
    SetHealthDraining(false);
  }

  void StartServer(net::KvServerOptions opts) {
    server_ = std::make_unique<net::KvServer>(backend_.get());
    ASSERT_TRUE(server_->Start(opts)) << server_->error();
  }

  std::vector<uint64_t> keys_;
  std::unique_ptr<ShardedIndex<Tree>> index_;
  std::unique_ptr<net::ShardedKvBackend<Tree>> backend_;
  std::unique_ptr<net::KvServer> server_;
};

std::string TraceIdHex(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf);
}

TEST_F(RequestSpanEndToEndTest, StalledRequestRetainedWithAllSpanKinds) {
  const uint64_t slow_key = keys_[37];
  net::KvServerOptions opts;
  // Head sampling OFF: every retained trace below is tail-retained.
  // The threshold is far above any loopback GET (even one that eats a
  // scheduler preemption), and the stall is far above the threshold.
  opts.request_sample = 0;
  opts.request_slow_ns = 25'000'000;       // 25 ms threshold
  opts.test_slow_key = slow_key;           // the deliberate stall hook
  opts.test_slow_ns = 100'000'000;         // 100 ms, far past the bar
  StartServer(opts);
  ASSERT_TRUE(RequestTracer::Global().enabled());

  net::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()))
      << client.error();

  // Fast traffic first: none of it may be retained.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(client.Get(keys_[static_cast<size_t>(i)]).has_value());
  }

  // The stalled request.
  const std::optional<uint64_t> v = client.Get(slow_key);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, slow_key * 10);

  // Finish runs after the reply flush; give the worker a beat.
  auto& tracer = RequestTracer::Global();
  for (int i = 0; i < 200 && tracer.slow_retained() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(tracer.slow_retained(), 1u);

  // Our request is identifiable by the stall: no loopback GET takes
  // 100 ms on its own (a preempted one might still breach the 25 ms
  // bar, which is fine — it is genuinely slow and belongs in the log).
  const auto slow_log = tracer.SlowSnapshot();
  const RequestTrace* found = nullptr;
  for (const RequestTrace& entry : slow_log) {
    if (entry.latency_ns >= opts.test_slow_ns) found = &entry;
  }
  ASSERT_NE(found, nullptr) << slow_log.size() << " slow traces";
  const RequestTrace& t = *found;
  EXPECT_EQ(t.opcode, net::kOpGet);
  EXPECT_EQ(t.status, net::kStatusOk);
  EXPECT_EQ(t.slow, 1u);
  EXPECT_GE(t.latency_ns, opts.test_slow_ns);
  EXPECT_GE(t.service_ns, opts.test_slow_ns);

  // All five span kinds must be present on the one stalled request.
  std::set<uint8_t> kinds;
  for (int i = 0; i < t.num_spans; ++i) kinds.insert(t.spans[i].kind);
  for (int k = 0; k < kNumRequestSpanKinds; ++k) {
    EXPECT_TRUE(kinds.count(static_cast<uint8_t>(k)))
        << "missing span kind " << RequestSpanKindName(
               static_cast<uint8_t>(k));
  }

  // The /requestz payload carries the trace with named span kinds.
  const std::string requestz = RenderRequestzJson(tracer);
  EXPECT_NE(requestz.find(TraceIdHex(t.trace_id)), std::string::npos);
  for (int k = 0; k < kNumRequestSpanKinds; ++k) {
    EXPECT_NE(requestz.find(RequestSpanKindName(static_cast<uint8_t>(k))),
              std::string::npos)
        << RequestSpanKindName(static_cast<uint8_t>(k));
  }

  // The trace id surfaces as an exemplar on the GET latency histogram,
  // in the bucket whose range contains the recorded service time.
  const std::string om =
      RenderOpenMetrics(MetricsRegistry::Global().Snap());
  const std::string needle =
      "trace_id=\"" + TraceIdHex(t.trace_id) + "\"";
  const size_t pos = om.find(needle);
  ASSERT_NE(pos, std::string::npos) << om.substr(0, 2000);
  const size_t line_start = om.rfind('\n', pos) + 1;
  const size_t line_end = om.find('\n', pos);
  const std::string line = om.substr(line_start, line_end - line_start);
  EXPECT_EQ(line.rfind("net_op_get_ns_bucket{le=\"", 0), 0u) << line;
  const double le = std::strtod(line.c_str() + 25, nullptr);
  const double ex_value =
      std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
  EXPECT_EQ(ex_value, static_cast<double>(t.service_ns)) << line;
  EXPECT_LE(ex_value, le) << line;  // the OpenMetrics in-range rule
}

TEST_F(RequestSpanEndToEndTest, FastTrafficHeadSamplesWithoutSlowLog) {
  net::KvServerOptions opts;
  opts.request_sample = 8;
  opts.request_slow_ns = 10ULL * 1000 * 1000 * 1000;  // never breached
  StartServer(opts);

  net::KvClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()))
      << client.error();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(client.Get(keys_[static_cast<size_t>(i) % keys_.size()])
                    .has_value());
  }

  auto& tracer = RequestTracer::Global();
  for (int i = 0; i < 200 && tracer.completed() < 400; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(tracer.completed(), 400u);
  EXPECT_GT(tracer.retained(), 0u);
  // 1-in-8 of everything this process completed (other tests reset).
  EXPECT_LE(tracer.retained(), tracer.completed() / 8 + 1);
  EXPECT_EQ(tracer.slow_retained(), 0u);

  // Retained traces are real requests with spans attached.
  const auto snap = tracer.Snapshot();
  ASSERT_FALSE(snap.empty());
  for (const RequestTrace& t : snap) {
    EXPECT_NE(t.trace_id, 0u);
    EXPECT_GT(t.num_spans, 0);
  }
}

// --- /healthz drain awareness ------------------------------------------

std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(RequestSpanEndToEndTest, HealthzFlipsTo503WhileDraining) {
  StartServer(net::KvServerOptions{});
  StatsServer stats;
  ASSERT_TRUE(stats.Start(0)) << stats.error();

  // Serving: healthy.
  std::string resp = HttpGet(stats.port(), "/healthz");
  EXPECT_NE(resp.find("200"), std::string::npos);
  EXPECT_NE(resp.find("ok"), std::string::npos);

  // Drain begins the moment Stop() lands.
  server_->Stop();
  EXPECT_TRUE(HealthDraining());
  resp = HttpGet(stats.port(), "/healthz");
  EXPECT_NE(resp.find("503"), std::string::npos);
  EXPECT_NE(resp.find("draining"), std::string::npos);

  // /requestz stays scrapeable during and after the drain.
  EXPECT_NE(HttpGet(stats.port(), "/requestz").find("200"),
            std::string::npos);
  stats.Stop();
}

}  // namespace
}  // namespace simdtree::obs
