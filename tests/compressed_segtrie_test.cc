// Tests for the path-compressed Seg-Trie: edge splits at every divergence
// offset, model-based randomized workloads, node-count guarantees (one
// node per branching level), and 128-bit keys with chained skips.

#include "segtrie/compressed_segtrie.h"

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/counters.h"
#include "util/rng.h"

namespace simdtree::segtrie {
namespace {

using Trie = CompressedSegTrie<uint64_t, uint64_t>;

TEST(CompressedSegTrieTest, EmptyAndSingle) {
  Trie t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Contains(0));
  EXPECT_FALSE(t.Erase(0));
  EXPECT_TRUE(t.Validate());

  EXPECT_TRUE(t.Insert(0xDEADBEEFCAFEBABEULL, 7));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(0xDEADBEEFCAFEBABEULL).value(), 7u);
  EXPECT_FALSE(t.Contains(0xDEADBEEFCAFEBABFULL));
  // A single key occupies exactly ONE node (fully compressed path).
  EXPECT_EQ(t.Stats().nodes, 1u);
  EXPECT_TRUE(t.Erase(0xDEADBEEFCAFEBABEULL));
  EXPECT_TRUE(t.empty());
}

TEST(CompressedSegTrieTest, SplitAtEveryDivergenceOffset) {
  // Two keys differing only at byte position b (from the top): the trie
  // must hold exactly one branch node + two leaves (or one leaf when the
  // divergence is at the last byte).
  for (int byte = 0; byte < 8; ++byte) {
    Trie t;
    const uint64_t base = 0x1111111111111111ULL;
    const uint64_t other = base ^ (0x22ULL << ((7 - byte) * 8));
    ASSERT_TRUE(t.Insert(base, 1));
    ASSERT_TRUE(t.Insert(other, 2));
    ASSERT_TRUE(t.Validate()) << "byte " << byte;
    ASSERT_EQ(t.Find(base).value(), 1u);
    ASSERT_EQ(t.Find(other).value(), 2u);
    ASSERT_FALSE(t.Contains(base ^ 1ULL << 63));
    const size_t expected_nodes = byte == 7 ? 1u : 3u;
    ASSERT_EQ(t.Stats().nodes, expected_nodes) << "byte " << byte;
  }
}

TEST(CompressedSegTrieTest, InsertOrderIndependence) {
  // The same key set must produce the same answers regardless of insert
  // order (splits happen at different times).
  std::vector<uint64_t> keys = {
      0x0000000000000001ULL, 0x0000000000000100ULL, 0x0000000001000000ULL,
      0x0100000000000000ULL, 0x0100000000000001ULL, 0x0101000000000000ULL,
      0xFFFFFFFFFFFFFFFFULL, 0x8000000000000000ULL,
  };
  for (int order = 0; order < 8; ++order) {
    Trie t;
    Rng rng(static_cast<uint64_t>(order));
    std::vector<uint64_t> shuffled = keys;
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    for (size_t i = 0; i < shuffled.size(); ++i) {
      ASSERT_TRUE(t.Insert(shuffled[i], shuffled[i] & 0xFF));
    }
    ASSERT_TRUE(t.Validate());
    ASSERT_EQ(t.size(), keys.size());
    for (uint64_t k : keys) {
      ASSERT_EQ(t.Find(k).value(), k & 0xFF) << "order " << order;
    }
    // Ordered traversal.
    std::vector<uint64_t> seen;
    t.ForEach([&](uint64_t k, const uint64_t&) { seen.push_back(k); });
    ASSERT_TRUE(std::is_sorted(seen.begin(), seen.end()));
    ASSERT_EQ(seen.size(), keys.size());
  }
}

TEST(CompressedSegTrieTest, RandomModelSparse) {
  Trie t;
  std::map<uint64_t, uint64_t> model;
  Rng rng(1);
  for (int op = 0; op < 8000; ++op) {
    const uint64_t k = rng.Next();  // sparse full-width keys
    if (rng.NextBounded(100) < 70) {
      const bool fresh = t.Insert(k, static_cast<uint64_t>(op));
      ASSERT_EQ(fresh, model.insert_or_assign(k, op).second);
    } else {
      ASSERT_EQ(t.Erase(k), model.erase(k) > 0);
    }
    if (op % 512 == 0) ASSERT_TRUE(t.Validate());
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(t.Find(k).value(), v);
  // Sparse random 64-bit keys: almost all paths compress to root+leaf
  // (two branching levels), far fewer nodes than keys * levels.
  EXPECT_LT(t.Stats().nodes, 2 * t.size());
}

TEST(CompressedSegTrieTest, RandomModelDense) {
  Trie t;
  std::map<uint64_t, uint64_t> model;
  Rng rng(2);
  for (int op = 0; op < 8000; ++op) {
    const uint64_t k = rng.NextBounded(4096);
    if (rng.NextBounded(100) < 60) {
      t.Insert(k, static_cast<uint64_t>(op));
      model[k] = static_cast<uint64_t>(op);
    } else {
      ASSERT_EQ(t.Erase(k), model.erase(k) > 0);
    }
    if (op % 512 == 0) ASSERT_TRUE(t.Validate());
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(t.Find(k).value(), v);
}

TEST(CompressedSegTrieTest, EraseDrainsAndReinserts) {
  Trie t;
  std::vector<uint64_t> keys;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.Next() & 0xFFFFFFFFULL);
    t.Insert(keys.back(), static_cast<uint64_t>(i));
  }
  for (uint64_t k : keys) t.Erase(k);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
  EXPECT_TRUE(t.Insert(42, 42));
  EXPECT_EQ(t.Find(42).value(), 42u);
}

TEST(CompressedSegTrieTest, LookupTouchesOneNodePerBranchingLevel) {
  // Sparse keys: a lookup must visit only the branching nodes — far fewer
  // than the 8 levels the uncompressed trie walks.
  Trie t;
  t.Insert(0x0101010101010101ULL, 1);
  t.Insert(0x0101010101010102ULL, 2);  // diverges at the last byte
  t.Insert(0x0201010101010101ULL, 3);  // diverges at the first byte

  SearchCounters c;
  EXPECT_TRUE(t.FindCounted(0x0101010101010102ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 2u);  // root branch + shared leaf

  c.Reset();
  EXPECT_TRUE(t.FindCounted(0x0201010101010101ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 2u);  // root branch + compressed leaf

  c.Reset();
  EXPECT_FALSE(t.FindCounted(0x0301010101010101ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 1u);  // miss at the root

  // Compare with the plain trie: 8 nodes for the same hit.
  SegTrie<uint64_t, uint64_t> plain;
  plain.Insert(0x0101010101010101ULL, 1);
  plain.Insert(0x0101010101010102ULL, 2);
  c.Reset();
  EXPECT_TRUE(plain.FindCounted(0x0101010101010102ULL, &c).has_value());
  EXPECT_EQ(c.nodes_visited, 8u);
}

TEST(CompressedSegTrieTest, MatchesPlainTrieOnSameWorkload) {
  Trie compressed;
  SegTrie<uint64_t, uint64_t> plain;
  Rng rng(5);
  for (int op = 0; op < 6000; ++op) {
    const uint64_t k = rng.Next() & 0xFFFF00FF00FFULL;
    if (rng.NextBounded(100) < 70) {
      const bool a = compressed.Insert(k, static_cast<uint64_t>(op));
      const bool b = plain.Insert(k, static_cast<uint64_t>(op));
      ASSERT_EQ(a, b);
    } else {
      ASSERT_EQ(compressed.Erase(k), plain.Erase(k));
    }
  }
  ASSERT_EQ(compressed.size(), plain.size());
  ASSERT_TRUE(compressed.Validate());
  // Compression must save nodes and memory on this sparse pattern.
  EXPECT_LT(compressed.Stats().nodes, plain.Stats().nodes);
  EXPECT_LT(compressed.MemoryBytes(), plain.MemoryBytes());
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.Next() & 0xFFFF00FF00FFULL;
    ASSERT_EQ(compressed.Find(k).has_value(), plain.Find(k).has_value());
  }
}

#if defined(__SIZEOF_INT128__)
TEST(CompressedSegTrieTest, Int128KeysWithChainedSkips) {
  using U128 = unsigned __int128;
  CompressedSegTrie<U128, uint64_t> t;
  // 16 levels; a single key's skip run (15) exceeds kMaxSkip (8), forcing
  // a chained compressed path.
  const U128 a = (static_cast<U128>(0x0123456789ABCDEFULL) << 64) | 0x42;
  const U128 b = a + 1;
  const U128 c = a ^ (static_cast<U128>(1) << 127);  // top-bit divergence
  EXPECT_TRUE(t.Insert(a, 1));
  EXPECT_TRUE(t.Insert(b, 2));
  EXPECT_TRUE(t.Insert(c, 3));
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(a).value(), 1u);
  EXPECT_EQ(t.Find(b).value(), 2u);
  EXPECT_EQ(t.Find(c).value(), 3u);
  EXPECT_FALSE(t.Contains(a + 2));
  EXPECT_TRUE(t.Erase(b));
  EXPECT_FALSE(t.Contains(b));
  EXPECT_EQ(t.size(), 2u);
}
#endif

TEST(CompressedSegTrieTest, SixteenBitSegments) {
  CompressedSegTrie<uint64_t, uint32_t, 16> t;  // 4 levels, kMaxSkip = 4
  std::map<uint64_t, uint32_t> model;
  Rng rng(7);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.Next() & 0xFFFF0000FFFFULL;
    t.Insert(k, static_cast<uint32_t>(i));
    model[k] = static_cast<uint32_t>(i);
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(t.Find(k).value(), v);
}

TEST(CompressedSegTrieTest, MoveSemantics) {
  Trie a;
  for (uint64_t k = 0; k < 500; ++k) a.Insert(k * 1000003ULL, k);
  Trie b = std::move(a);
  EXPECT_EQ(b.size(), 500u);
  EXPECT_TRUE(b.Validate());
  EXPECT_EQ(b.Find(1000003ULL).value(), 1u);
  b.Insert(77, 77);
  EXPECT_TRUE(b.Contains(77));
}

}  // namespace
}  // namespace simdtree::segtrie
