// Adversarial input patterns across all index structures: type-boundary
// keys, massive duplication, sawtooth churn, organ-pipe and bit-reversal
// orders, and values colliding with the padding sentinel. Each pattern is
// run against every structure with an oracle.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "core/simdtree.h"
#include "gtest/gtest.h"
#include "segtrie/compressed_segtrie.h"
#include "util/rng.h"

namespace simdtree {
namespace {

// Key patterns designed to stress split/merge/linearization logic.
std::vector<uint64_t> Pattern(int which, size_t n) {
  std::vector<uint64_t> keys;
  keys.reserve(n);
  switch (which) {
    case 0:  // organ pipe: 0, max, 1, max-1, ...
      for (size_t i = 0; i < n; ++i) {
        keys.push_back(i % 2 == 0 ? i / 2 : ~0ULL - i / 2);
      }
      break;
    case 1:  // bit-reversed counter (maximally shuffled dense set)
      for (size_t i = 0; i < n; ++i) {
        uint64_t v = i;
        uint64_t r = 0;
        for (int b = 0; b < 20; ++b) {
          r = (r << 1) | (v & 1);
          v >>= 1;
        }
        keys.push_back(r);
      }
      break;
    case 2:  // long shared prefixes with byte-aligned divergence
      for (size_t i = 0; i < n; ++i) {
        keys.push_back(0xAABBCCDD00000000ULL | ((i % 7) << 24) | (i / 7));
      }
      break;
    case 3:  // powers of two and neighbours
      for (size_t i = 0; i < n; ++i) {
        const int bit = static_cast<int>(i % 63);
        const uint64_t base = 1ULL << bit;
        keys.push_back(base + (i % 3) - 1);
      }
      break;
    default:  // dense low range
      for (size_t i = 0; i < n; ++i) keys.push_back(i % 512);
  }
  return keys;
}

class AdversarialPatternTest : public testing::TestWithParam<int> {};

TEST_P(AdversarialPatternTest, TreesMatchOracle) {
  const auto keys = Pattern(GetParam(), 4000);
  btree::BPlusTree<uint64_t, uint64_t> bt(16);
  segtree::SegTree<uint64_t, uint64_t> st(16);
  std::multimap<uint64_t, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    bt.Insert(keys[i], i);
    st.Insert(keys[i], i);
    oracle.emplace(keys[i], i);
    if (i % 3 == 2) {  // sawtooth: delete every third insert's key
      const uint64_t k = keys[i / 2];
      const bool a = bt.Erase(k);
      const bool b = st.Erase(k);
      auto it = oracle.find(k);
      const bool m = it != oracle.end();
      if (m) oracle.erase(it);
      ASSERT_EQ(a, m);
      ASSERT_EQ(b, m);
    }
  }
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st.Validate());
  ASSERT_EQ(bt.size(), oracle.size());
  ASSERT_EQ(st.size(), oracle.size());
  for (uint64_t k : keys) {
    ASSERT_EQ(bt.Count(k), oracle.count(k)) << k;
    ASSERT_EQ(st.Count(k), oracle.count(k)) << k;
  }
}

TEST_P(AdversarialPatternTest, TriesMatchOracle) {
  const auto keys = Pattern(GetParam(), 4000);
  segtrie::SegTrie<uint64_t, uint64_t> plain;
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> opt;
  segtrie::CompressedSegTrie<uint64_t, uint64_t> comp;
  std::map<uint64_t, uint64_t> oracle;
  for (size_t i = 0; i < keys.size(); ++i) {
    plain.Insert(keys[i], i);
    opt.Insert(keys[i], i);
    comp.Insert(keys[i], i);
    oracle[keys[i]] = i;
    if (i % 3 == 2) {
      const uint64_t k = keys[i / 2];
      const bool m = oracle.erase(k) > 0;
      ASSERT_EQ(plain.Erase(k), m);
      ASSERT_EQ(opt.Erase(k), m);
      ASSERT_EQ(comp.Erase(k), m);
    }
  }
  ASSERT_TRUE(plain.Validate());
  ASSERT_TRUE(opt.Validate());
  ASSERT_TRUE(comp.Validate());
  ASSERT_EQ(plain.size(), oracle.size());
  ASSERT_EQ(opt.size(), oracle.size());
  ASSERT_EQ(comp.size(), oracle.size());
  for (const auto& [k, v] : oracle) {
    ASSERT_EQ(plain.Find(k).value(), v);
    ASSERT_EQ(opt.Find(k).value(), v);
    ASSERT_EQ(comp.Find(k).value(), v);
  }
}

// Kept out of the INSTANTIATE macro: commas inside the braced array
// initializer would be treated as macro argument separators.
std::string PatternName(const testing::TestParamInfo<int>& info) {
  const char* names[] = {"organ_pipe", "bit_reversed", "shared_prefix",
                         "powers_of_two", "dense_low"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Patterns, AdversarialPatternTest,
                         testing::Values(0, 1, 2, 3, 4), PatternName);

TEST(AdversarialTest, TypeBoundaryKeysEverywhere) {
  const std::vector<uint64_t> keys = {0, 1, 0x7FFFFFFFFFFFFFFFULL,
                                      0x8000000000000000ULL,
                                      ~0ULL - 1, ~0ULL};
  btree::BPlusTree<uint64_t, uint64_t> bt(4);
  segtree::SegTree<uint64_t, uint64_t> st(4);
  segtrie::CompressedSegTrie<uint64_t, uint64_t> comp;
  for (uint64_t k : keys) {
    bt.Insert(k, k);
    st.Insert(k, k);
    comp.Insert(k, k);
  }
  for (uint64_t k : keys) {
    ASSERT_EQ(bt.Find(k).value(), k);
    ASSERT_EQ(st.Find(k).value(), k);
    ASSERT_EQ(comp.Find(k).value(), k);
  }
  EXPECT_FALSE(st.Contains(2));
  EXPECT_FALSE(comp.Contains(0x8000000000000001ULL));
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st.Validate());
  ASSERT_TRUE(comp.Validate());
}

TEST(AdversarialTest, MassiveDuplicationThenDrain) {
  // 10k copies of three keys: stresses duplicate routing, candidate
  // probing in EraseRec, and chained-leaf boundary checks.
  btree::BPlusTree<uint32_t, uint32_t> bt(8);
  segtree::SegTree<uint32_t, uint32_t> st(8);
  for (int rep = 0; rep < 10000; ++rep) {
    for (uint32_t k : {100u, 200u, 300u}) {
      bt.Insert(k, static_cast<uint32_t>(rep));
      st.Insert(k, static_cast<uint32_t>(rep));
    }
  }
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st.Validate());
  EXPECT_EQ(bt.Count(200), 10000u);
  EXPECT_EQ(st.Count(200), 10000u);
  EXPECT_EQ(bt.Count(150), 0u);
  for (int rep = 0; rep < 10000; ++rep) {
    ASSERT_TRUE(bt.Erase(200));
    ASSERT_TRUE(st.Erase(200));
  }
  EXPECT_FALSE(bt.Erase(200));
  EXPECT_EQ(st.Count(200), 0u);
  EXPECT_EQ(bt.Count(100), 10000u);
  ASSERT_TRUE(bt.Validate());
  ASSERT_TRUE(st.Validate());
}

TEST(AdversarialTest, SmallSignedKeysFullDomainChurn) {
  // int8 keys: the whole domain fits in two nodes; churn the domain
  // repeatedly to stress min-occupancy rebalancing at every boundary.
  btree::BPlusTree<int8_t, int32_t> bt(6);
  segtree::SegTree<int8_t, int32_t> st(6);
  std::multimap<int8_t, int32_t> oracle;
  Rng rng(13);
  for (int round = 0; round < 20; ++round) {
    for (int v = -128; v < 128; ++v) {
      const int8_t k = static_cast<int8_t>(v);
      bt.Insert(k, round);
      st.Insert(k, round);
      oracle.emplace(k, round);
    }
    for (int i = 0; i < 200; ++i) {
      const int8_t k = static_cast<int8_t>(rng.Next());
      const bool a = bt.Erase(k);
      const bool b = st.Erase(k);
      auto it = oracle.find(k);
      const bool m = it != oracle.end();
      if (m) oracle.erase(it);
      ASSERT_EQ(a, m);
      ASSERT_EQ(b, m);
    }
    ASSERT_TRUE(bt.Validate()) << "round " << round;
    ASSERT_TRUE(st.Validate()) << "round " << round;
  }
  for (int v = -128; v < 128; ++v) {
    const int8_t k = static_cast<int8_t>(v);
    ASSERT_EQ(bt.Count(k), oracle.count(k));
    ASSERT_EQ(st.Count(k), oracle.count(k));
  }
}

}  // namespace
}  // namespace simdtree
