// Randomized differential harness over every SIMD backend: each
// Ops<T, B, W> specialization and each search kernel is run against the
// scalar oracle of the same register width over adversarial inputs —
// type extremes (INT_MIN/INT_MAX lanes), all-duplicate nodes, max-key
// padding tails (the linearizer's PadValue image), sign-boundary
// straddles (around 0 for signed keys, around the bias point for
// unsigned ones) — for all four key widths (8/16/32/64-bit).
//
// Native kernels this TU cannot name directly (it is compiled with
// baseline flags) are reached through the runtime-dispatch registry
// (kary/dispatch_kernels.h): the same function pointers every
// Backend::kDispatch search uses. Combos the host CPU cannot execute,
// or whose kernels this binary does not carry, are SKIPPED — visibly,
// via GTEST_SKIP — never silently passed.
//
// SIMDTREE_STRESS=1 multiplies the randomized trial counts (the ctest
// `stress` label runs that configuration).

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "kary/batch_search.h"
#include "kary/dispatch_kernels.h"
#include "kary/kary_search.h"
#include "kary/linearize.h"
#include "simd/bitmask_eval.h"
#include "simd/cpu_features.h"
#include "simd/dispatch.h"
#include "simd/simd256.h"
#include "simd/simd512.h"
#include "util/counters.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using kary::NativeKernels;
using simd::Backend;
using simd::DispatchLevel;
using simd::LaneTraits;

int TrialScale() {
  const char* s = std::getenv("SIMDTREE_STRESS");
  return (s != nullptr && s[0] == '1') ? 10 : 1;
}

// Whether the registry path for the given register width is runnable
// here: the CPU can execute the kernels' ISA and the binary carries
// them. Callers GTEST_SKIP with `why` when this returns false.
bool RegistryRunnable(int register_bits, std::string* why) {
  const DispatchLevel cpu_max =
      simd::MaxSupportedLevel(simd::DetectCpuFeatures());
  const DispatchLevel need = register_bits == 512 ? DispatchLevel::kAvx512
                             : register_bits == 256
                                 ? DispatchLevel::kAvx2
                                 : DispatchLevel::kSse;
  if (static_cast<int>(cpu_max) < static_cast<int>(need)) {
    *why = "host CPU lacks the ISA for " + std::to_string(register_bits) +
           "-bit native kernels (" + simd::CpuFeatureString() + ")";
    return false;
  }
  if (!simd::NativeKernelsCompiled(register_bits)) {
    *why = "binary carries no native kernels for " +
           std::to_string(register_bits) + "-bit registers";
    return false;
  }
  return true;
}

// --- adversarial inputs ---------------------------------------------------

// One register's worth of lane values per pattern. `trial` varies the
// random patterns; the deterministic ones repeat.
template <typename T>
std::vector<std::vector<T>> AdversarialLaneSets(int lanes, Rng& rng) {
  const T kMin = std::numeric_limits<T>::min();
  const T kMax = std::numeric_limits<T>::max();
  std::vector<std::vector<T>> sets;

  std::vector<T> random(static_cast<size_t>(lanes));
  for (auto& k : random) k = static_cast<T>(rng.Next());
  sets.push_back(random);

  // All duplicates of one random value; and of the extremes.
  sets.push_back(std::vector<T>(static_cast<size_t>(lanes),
                                static_cast<T>(rng.Next())));
  sets.push_back(std::vector<T>(static_cast<size_t>(lanes), kMin));
  sets.push_back(std::vector<T>(static_cast<size_t>(lanes), kMax));

  // Max-key padding tail: real keys then kMax padding (what a
  // linearized node's unmaterialized tail looks like).
  std::vector<T> padded(static_cast<size_t>(lanes), kMax);
  for (int i = 0; i < lanes / 2; ++i) {
    padded[static_cast<size_t>(i)] = static_cast<T>(rng.Next());
  }
  std::sort(padded.begin(), padded.end());
  sets.push_back(padded);

  // Sign-boundary straddle: consecutive values around the point where
  // the signed/unsigned order diverges — 0 for signed keys, the sign
  // bit (kSignBias) for unsigned ones. The SSE/AVX2 unsigned path
  // biases operands; an off-by-one here flips exactly these lanes.
  std::vector<T> straddle(static_cast<size_t>(lanes));
  const T pivot = std::is_signed_v<T>
                      ? T{0}
                      : static_cast<T>(LaneTraits<T, 128>::kSignBias);
  for (int i = 0; i < lanes; ++i) {
    straddle[static_cast<size_t>(i)] =
        static_cast<T>(pivot + static_cast<T>(i - lanes / 2));
  }
  sets.push_back(straddle);

  return sets;
}

// Probe values worth aiming at a node: extremes, boundary straddles,
// the node's own lanes and their neighbours, randoms.
template <typename T>
std::vector<T> AdversarialProbes(const std::vector<T>& lanes, Rng& rng) {
  const T kMin = std::numeric_limits<T>::min();
  const T kMax = std::numeric_limits<T>::max();
  std::vector<T> probes = {kMin, kMax, T{0}, static_cast<T>(rng.Next())};
  const T pivot = std::is_signed_v<T>
                      ? T{0}
                      : static_cast<T>(LaneTraits<T, 128>::kSignBias);
  probes.push_back(static_cast<T>(pivot - 1));
  probes.push_back(pivot);
  for (T k : lanes) {
    probes.push_back(k);
    if (k != kMin) probes.push_back(static_cast<T>(k - 1));
    if (k != kMax) probes.push_back(static_cast<T>(k + 1));
  }
  return probes;
}

// --- mask-level differential ----------------------------------------------

// Expected CmpGt/CmpEq mask images from a per-lane loop, in the mask
// layout of the given register width (byte-granular at 128/256,
// lane-granular at 512).
template <typename T, int kBits>
void OracleMasks(const std::vector<T>& lanes, T probe, uint64_t* gt,
                 uint64_t* eq) {
  using Traits = LaneTraits<T, kBits>;
  *gt = 0;
  *eq = 0;
  for (int i = 0; i < Traits::kLanes; ++i) {
    const uint64_t lane_bits =
        ((uint64_t{1} << Traits::kMaskBitsPerLane) - 1)
        << (i * Traits::kMaskBitsPerLane);
    if (lanes[static_cast<size_t>(i)] > probe) *gt |= lane_bits;
    if (lanes[static_cast<size_t>(i)] == probe) *eq |= lane_bits;
  }
}

// The scalar backend against the per-lane oracle (validates the oracle
// and the scalar image in one direction), then the native mask function
// against the same oracle.
template <typename T, int kBits>
void CheckMasksAgainstOracle(uint64_t (*native_gt)(const T*, T),
                             uint64_t (*native_eq)(const T*, T)) {
  using Sca = simd::Ops<T, Backend::kScalar, kBits>;
  constexpr int lanes = LaneTraits<T, kBits>::kLanes;
  Rng rng(61);
  const int trials = 200 * TrialScale();
  for (int trial = 0; trial < trials; ++trial) {
    for (const auto& keys : AdversarialLaneSets<T>(lanes, rng)) {
      for (T probe : AdversarialProbes<T>(keys, rng)) {
        uint64_t want_gt, want_eq;
        OracleMasks<T, kBits>(keys, probe, &want_gt, &want_eq);
        const uint64_t sca_gt = static_cast<uint64_t>(Sca::MoveMask(
            Sca::CmpGt(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe))));
        const uint64_t sca_eq = static_cast<uint64_t>(Sca::MoveMask(
            Sca::CmpEq(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe))));
        ASSERT_EQ(sca_gt, want_gt)
            << "scalar gt, v=" << static_cast<int64_t>(probe);
        ASSERT_EQ(sca_eq, want_eq)
            << "scalar eq, v=" << static_cast<int64_t>(probe);
        if (native_gt != nullptr) {
          ASSERT_EQ(native_gt(keys.data(), probe), want_gt)
              << "native gt, v=" << static_cast<int64_t>(probe);
        }
        if (native_eq != nullptr) {
          ASSERT_EQ(native_eq(keys.data(), probe), want_eq)
              << "native eq, v=" << static_cast<int64_t>(probe);
        }
      }
    }
  }
}

// 128-bit: the baseline SSE backend is inline in this TU.
template <typename T>
void CheckMasks128() {
  if constexpr (simd::kHaveSse) {
    using Sse = simd::Ops<T, Backend::kSse, 128>;
    CheckMasksAgainstOracle<T, 128>(
        [](const T* keys, T v) {
          return static_cast<uint64_t>(Sse::MoveMask(
              Sse::CmpGt(Sse::LoadUnaligned(keys), Sse::Set1(v))));
        },
        [](const T* keys, T v) {
          return static_cast<uint64_t>(Sse::MoveMask(
              Sse::CmpEq(Sse::LoadUnaligned(keys), Sse::Set1(v))));
        });
  } else {
    CheckMasksAgainstOracle<T, 128>(nullptr, nullptr);
  }
}

TEST(BackendDifferentialTest, Masks128AllKeyWidths) {
  CheckMasks128<int8_t>();
  CheckMasks128<uint8_t>();
  CheckMasks128<int16_t>();
  CheckMasks128<uint16_t>();
  CheckMasks128<int32_t>();
  CheckMasks128<uint32_t>();
  CheckMasks128<int64_t>();
  CheckMasks128<uint64_t>();
}

// 256/512-bit native masks via the dispatch registry.
template <typename T, int kBits>
void CheckMasksRegistry() {
  const auto& table = NativeKernels<T, simd::PopcountEval, kBits>::instance;
  ASSERT_NE(table.cmp_gt_mask, nullptr);
  ASSERT_NE(table.cmp_eq_mask, nullptr);
  CheckMasksAgainstOracle<T, kBits>(table.cmp_gt_mask, table.cmp_eq_mask);
}

TEST(BackendDifferentialTest, Masks256NativeAllKeyWidths) {
  std::string why;
  if (!RegistryRunnable(256, &why)) GTEST_SKIP() << why;
  CheckMasksRegistry<int8_t, 256>();
  CheckMasksRegistry<uint8_t, 256>();
  CheckMasksRegistry<int16_t, 256>();
  CheckMasksRegistry<uint16_t, 256>();
  CheckMasksRegistry<int32_t, 256>();
  CheckMasksRegistry<uint32_t, 256>();
  CheckMasksRegistry<int64_t, 256>();
  CheckMasksRegistry<uint64_t, 256>();
}

TEST(BackendDifferentialTest, Masks512NativeAllKeyWidths) {
  std::string why;
  if (!RegistryRunnable(512, &why)) GTEST_SKIP() << why;
  CheckMasksRegistry<int8_t, 512>();
  CheckMasksRegistry<uint8_t, 512>();
  CheckMasksRegistry<int16_t, 512>();
  CheckMasksRegistry<uint16_t, 512>();
  CheckMasksRegistry<int32_t, 512>();
  CheckMasksRegistry<uint32_t, 512>();
  CheckMasksRegistry<int64_t, 512>();
  CheckMasksRegistry<uint64_t, 512>();
}

// --- search-kernel differential -------------------------------------------

// Sorted key sets that hit kernel edge cases at arity k: empty, single,
// exactly one node, one-over, duplicates everywhere, extreme-heavy, and
// larger random sets whose linearizations carry max-key padding tails.
template <typename T>
std::vector<std::vector<T>> AdversarialKeySets(int arity, Rng& rng) {
  const T kMin = std::numeric_limits<T>::min();
  const T kMax = std::numeric_limits<T>::max();
  std::vector<std::vector<T>> sets;
  sets.push_back({});
  sets.push_back({static_cast<T>(rng.Next())});
  for (int64_t n : {int64_t{arity - 1}, int64_t{arity},
                    int64_t{arity + 1}, int64_t{200}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());
    sets.push_back(keys);
    // All-duplicate run with extreme sentinels at both ends.
    std::vector<T> dup(static_cast<size_t>(n), static_cast<T>(42));
    dup.front() = kMin;
    dup.back() = kMax;
    std::sort(dup.begin(), dup.end());
    sets.push_back(dup);
  }
  // Extreme-heavy: half the keys are the type minimum or maximum.
  std::vector<T> extremes;
  for (int i = 0; i < 50; ++i) {
    extremes.push_back(i % 2 == 0 ? kMin : kMax);
    extremes.push_back(static_cast<T>(rng.Next()));
  }
  std::sort(extremes.begin(), extremes.end());
  sets.push_back(extremes);
  return sets;
}

// Runs one (layout, kernel) pair over the adversarial key sets against
// std::upper_bound. `bf` and `df` are the single-query kernels (either
// template instantiations or registry pointers); `bf_group`/`df_group`
// the pipelined batch kernels (may be null to skip).
template <typename T, int kBits>
void CheckSearchKernels(
    int64_t (*bf)(const T*, int64_t, int64_t, T),
    int64_t (*df)(const T*, int64_t, int64_t, T),
    void (*bf_group)(const T*, int64_t, int64_t, const T*, int, int64_t*,
                     SearchCounters*),
    void (*df_group)(const T*, int64_t, int64_t, const T*, int, int64_t*,
                     SearchCounters*)) {
  constexpr int arity = LaneTraits<T, kBits>::kArity;
  Rng rng(67);
  const int rounds = 2 * TrialScale();
  for (int round = 0; round < rounds; ++round) {
    for (const auto& keys : AdversarialKeySets<T>(arity, rng)) {
      const int64_t n = static_cast<int64_t>(keys.size());
      const kary::KaryShape shape = kary::KaryShape::For(arity, n == 0 ? 1 : n);
      for (kary::Layout layout :
           {kary::Layout::kBreadthFirst, kary::Layout::kDepthFirst}) {
        const kary::Storage storage = layout == kary::Layout::kDepthFirst
                                          ? kary::Storage::kPerfect
                                          : kary::Storage::kTruncated;
        const kary::KaryLayout kl(shape, layout);
        const int64_t stored = kl.StoredSlots(n, storage);
        std::vector<T> lin(static_cast<size_t>(stored));
        kl.Linearize(keys.data(), n, lin.data(), stored, kary::PadValue<T>());

        const auto probes = AdversarialProbes<T>(keys, rng);
        const auto single = layout == kary::Layout::kBreadthFirst ? bf : df;
        for (T v : probes) {
          const int64_t want =
              std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
          ASSERT_EQ(single(lin.data(), stored, n, v), want)
              << "n=" << n << " layout=" << kary::LayoutName(layout)
              << " v=" << static_cast<int64_t>(v);
        }
        const auto group =
            layout == kary::Layout::kBreadthFirst ? bf_group : df_group;
        if (group != nullptr && !probes.empty()) {
          const int g = std::min<int>(static_cast<int>(probes.size()),
                                      kMaxBatchGroup);
          std::vector<int64_t> out(static_cast<size_t>(g), -1);
          group(lin.data(), stored, n, probes.data(), g, out.data(), nullptr);
          for (int i = 0; i < g; ++i) {
            const int64_t want =
                std::upper_bound(keys.begin(), keys.end(),
                                 probes[static_cast<size_t>(i)]) -
                keys.begin();
            ASSERT_EQ(out[static_cast<size_t>(i)], want)
                << "group i=" << i << " layout="
                << kary::LayoutName(layout);
          }
        }
      }
    }
  }
}

// Template-instantiated kernels for a concrete backend.
template <typename T, typename Eval, Backend B, int kBits>
void CheckSearchKernelsInline() {
  CheckSearchKernels<T, kBits>(
      [](const T* lin, int64_t stored, int64_t n, T v) {
        return kary::UpperBoundBf<T, Eval, B, kBits>(lin, stored, n, v);
      },
      [](const T* lin, int64_t stored, int64_t n, T v) {
        return kary::UpperBoundDf<T, Eval, B, kBits>(lin, stored, n, v);
      },
      [](const T* lin, int64_t stored, int64_t n, const T* vals, int g,
         int64_t* out, SearchCounters* c) {
        kary::UpperBoundBfGroup<T, Eval, B, kBits>(lin, stored, n, vals, g,
                                                   out, c);
      },
      [](const T* lin, int64_t stored, int64_t n, const T* vals, int g,
         int64_t* out, SearchCounters* c) {
        kary::UpperBoundDfGroup<T, Eval, B, kBits>(lin, stored, n, vals, g,
                                                   out, c);
      });
}

// Registry-registered native kernels (every slot must be populated).
template <typename T, typename Eval, int kBits>
void CheckSearchKernelsRegistry() {
  const auto& table = NativeKernels<T, Eval, kBits>::instance;
  ASSERT_NE(table.upper_bound_bf, nullptr);
  ASSERT_NE(table.upper_bound_df, nullptr);
  ASSERT_NE(table.upper_bound_bf_group, nullptr);
  ASSERT_NE(table.upper_bound_df_group, nullptr);
  ASSERT_NE(table.compare_step, nullptr);
  CheckSearchKernels<T, kBits>(table.upper_bound_bf, table.upper_bound_df,
                               table.upper_bound_bf_group,
                               table.upper_bound_df_group);
}

// Scalar images at every width always run: they are the oracle's twin
// and the fallback every dispatch route must be able to take.
TEST(BackendDifferentialTest, SearchScalarAllWidthsAllKeyWidths) {
  CheckSearchKernelsInline<int8_t, simd::PopcountEval, Backend::kScalar,
                           128>();
  CheckSearchKernelsInline<uint16_t, simd::BitShiftEval, Backend::kScalar,
                           128>();
  CheckSearchKernelsInline<int32_t, simd::SwitchCaseEval, Backend::kScalar,
                           256>();
  CheckSearchKernelsInline<uint32_t, simd::PopcountEval, Backend::kScalar,
                           512>();
  CheckSearchKernelsInline<int64_t, simd::PopcountEval, Backend::kScalar,
                           512>();
  CheckSearchKernelsInline<uint8_t, simd::PopcountEval, Backend::kScalar,
                           512>();
}

TEST(BackendDifferentialTest, Search128SseAllKeyWidths) {
  if constexpr (!simd::kHaveSse) {
    GTEST_SKIP() << "binary built without the SSE backend";
  } else {
    CheckSearchKernelsInline<int8_t, simd::PopcountEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<uint8_t, simd::BitShiftEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<int16_t, simd::SwitchCaseEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<uint16_t, simd::PopcountEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<int32_t, simd::PopcountEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<uint32_t, simd::SwitchCaseEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<int64_t, simd::BitShiftEval, Backend::kSse,
                             128>();
    CheckSearchKernelsInline<uint64_t, simd::PopcountEval, Backend::kSse,
                             128>();
  }
}

TEST(BackendDifferentialTest, Search256NativeAllKeyWidths) {
  std::string why;
  if (!RegistryRunnable(256, &why)) GTEST_SKIP() << why;
  CheckSearchKernelsRegistry<int8_t, simd::PopcountEval, 256>();
  CheckSearchKernelsRegistry<uint8_t, simd::BitShiftEval, 256>();
  CheckSearchKernelsRegistry<int16_t, simd::SwitchCaseEval, 256>();
  CheckSearchKernelsRegistry<uint16_t, simd::PopcountEval, 256>();
  CheckSearchKernelsRegistry<int32_t, simd::PopcountEval, 256>();
  CheckSearchKernelsRegistry<uint32_t, simd::SwitchCaseEval, 256>();
  CheckSearchKernelsRegistry<int64_t, simd::BitShiftEval, 256>();
  CheckSearchKernelsRegistry<uint64_t, simd::PopcountEval, 256>();
}

TEST(BackendDifferentialTest, Search512NativeAllKeyWidths) {
  std::string why;
  if (!RegistryRunnable(512, &why)) GTEST_SKIP() << why;
  CheckSearchKernelsRegistry<int8_t, simd::PopcountEval, 512>();
  CheckSearchKernelsRegistry<uint8_t, simd::BitShiftEval, 512>();
  CheckSearchKernelsRegistry<int16_t, simd::SwitchCaseEval, 512>();
  CheckSearchKernelsRegistry<uint16_t, simd::PopcountEval, 512>();
  CheckSearchKernelsRegistry<int32_t, simd::PopcountEval, 512>();
  CheckSearchKernelsRegistry<uint32_t, simd::SwitchCaseEval, 512>();
  CheckSearchKernelsRegistry<int64_t, simd::BitShiftEval, 512>();
  CheckSearchKernelsRegistry<uint64_t, simd::PopcountEval, 512>();
}

// The dispatch routing tag itself, at every width: whatever the host,
// kDispatch must agree with the oracle (native where available, scalar
// image otherwise). Runs everywhere by construction.
TEST(BackendDifferentialTest, SearchDispatchAllWidthsAllKeyWidths) {
  CheckSearchKernelsInline<int8_t, simd::PopcountEval, Backend::kDispatch,
                           128>();
  CheckSearchKernelsInline<uint16_t, simd::SwitchCaseEval,
                           Backend::kDispatch, 128>();
  CheckSearchKernelsInline<int32_t, simd::PopcountEval, Backend::kDispatch,
                           256>();
  CheckSearchKernelsInline<uint64_t, simd::BitShiftEval, Backend::kDispatch,
                           256>();
  CheckSearchKernelsInline<int8_t, simd::PopcountEval, Backend::kDispatch,
                           512>();
  CheckSearchKernelsInline<uint16_t, simd::PopcountEval, Backend::kDispatch,
                           512>();
  CheckSearchKernelsInline<uint32_t, simd::SwitchCaseEval,
                           Backend::kDispatch, 512>();
  CheckSearchKernelsInline<int64_t, simd::PopcountEval, Backend::kDispatch,
                           512>();
}

// The grouped (frontier) engines reach native code only through the
// registered compare_step leaf; differential them against the scalar
// grouped engine across the same adversarial sets.
template <typename T, typename Eval, Backend B, int kBits>
void CheckGroupedAgainstScalar() {
  constexpr int arity = LaneTraits<T, kBits>::kArity;
  Rng rng(71);
  for (const auto& keys : AdversarialKeySets<T>(arity, rng)) {
    const int64_t n = static_cast<int64_t>(keys.size());
    const kary::KaryShape shape = kary::KaryShape::For(arity, n == 0 ? 1 : n);
    const kary::KaryLayout kl(shape, kary::Layout::kBreadthFirst);
    const int64_t stored = kl.StoredSlots(n, kary::Storage::kTruncated);
    std::vector<T> lin(static_cast<size_t>(stored));
    kl.Linearize(keys.data(), n, lin.data(), stored, kary::PadValue<T>());

    auto probes = AdversarialProbes<T>(keys, rng);
    std::sort(probes.begin(), probes.end());
    std::vector<int64_t> got(probes.size()), want(probes.size());
    kary::UpperBoundSortedGroupedBf<T, Eval, B, kBits>(
        lin.data(), stored, n, probes.data(), probes.size(), got.data());
    kary::UpperBoundSortedGroupedBf<T, Eval, Backend::kScalar, kBits>(
        lin.data(), stored, n, probes.data(), probes.size(), want.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(got[i], want[i])
          << "i=" << i << " v=" << static_cast<int64_t>(probes[i]);
      const int64_t want_std =
          std::upper_bound(keys.begin(), keys.end(), probes[i]) -
          keys.begin();
      ASSERT_EQ(got[i], want_std) << "i=" << i;
    }
  }
}

TEST(BackendDifferentialTest, GroupedDispatchMatchesScalarAllWidths) {
  CheckGroupedAgainstScalar<int8_t, simd::PopcountEval, Backend::kDispatch,
                            128>();
  CheckGroupedAgainstScalar<uint16_t, simd::PopcountEval, Backend::kDispatch,
                            256>();
  CheckGroupedAgainstScalar<int32_t, simd::PopcountEval, Backend::kDispatch,
                            512>();
  CheckGroupedAgainstScalar<uint64_t, simd::SwitchCaseEval,
                            Backend::kDispatch, 512>();
}

}  // namespace
}  // namespace simdtree
