// Observability subsystem tests: LogHistogram bucket geometry and the
// quantization error bound (including the acceptance check that
// percentiles from concurrent recording agree with raw-sample
// percentiles within one log bucket), MetricsRegistry get-or-create and
// JSON export, PerfCounterGroup graceful degradation under
// SIMDTREE_DISABLE_PERF, and the per-operation metrics hooks of the
// concurrent index wrappers.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/sharded.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "obs/export.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "segtree/segtree.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using obs::LogHistogram;

// --- LogHistogram geometry ------------------------------------------------

TEST(HistogramTest, ExactRegionIsExact) {
  // Values below 2 * kSubBuckets get one bucket each; the representative
  // is the value itself.
  for (uint64_t v = 0; v < 2 * LogHistogram::kSubBuckets; ++v) {
    const size_t b = LogHistogram::BucketIndex(v);
    EXPECT_EQ(b, static_cast<size_t>(v));
    EXPECT_EQ(LogHistogram::BucketLow(b), v);
    EXPECT_EQ(LogHistogram::BucketMid(b), v);
  }
}

TEST(HistogramTest, BucketIndexIsMonotoneAndCoversDomain) {
  // Bucket lower edges must round-trip and bucket indices must be
  // monotone in the value, across the full 64-bit range.
  size_t prev = 0;
  for (uint64_t v = 1; v != 0; v = v < (uint64_t{1} << 62) ? v * 3 + 1 : 0) {
    const size_t b = LogHistogram::BucketIndex(v);
    ASSERT_LT(b, LogHistogram::kBuckets);
    ASSERT_GE(b, prev);
    prev = b;
    // v lies inside its bucket: low <= v and (if not the last bucket)
    // v < next bucket's low.
    EXPECT_LE(LogHistogram::BucketLow(b), v);
    if (b + 1 < LogHistogram::kBuckets) {
      EXPECT_LT(v, LogHistogram::BucketLow(b + 1));
    }
  }
  EXPECT_LT(LogHistogram::BucketIndex(~uint64_t{0}), LogHistogram::kBuckets);
}

TEST(HistogramTest, RelativeErrorBound) {
  // The representative midpoint is within 2^-kPrecisionBits of the true
  // value everywhere (and within half that in the geometric region).
  Rng rng(7);
  constexpr double kBound = 1.0 / (1 << LogHistogram::kPrecisionBits);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t v = rng.Next() >> (rng.Next() % 40);
    const uint64_t mid = LogHistogram::BucketMid(LogHistogram::BucketIndex(v));
    if (v == 0) {
      EXPECT_EQ(mid, 0u);
      continue;
    }
    const double rel =
        std::abs(static_cast<double>(mid) - static_cast<double>(v)) /
        static_cast<double>(v);
    EXPECT_LE(rel, kBound) << "v=" << v << " mid=" << mid;
  }
}

TEST(HistogramTest, EmptyIsAllZero) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.999), 0u);
}

TEST(HistogramTest, BasicRecording) {
  LogHistogram h;
  h.Record(1);
  h.Record(2);
  h.Record(3);
  EXPECT_EQ(h.Count(), 3u);
  EXPECT_DOUBLE_EQ(h.Mean(), 2.0);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 3u);
  EXPECT_EQ(h.Percentile(0.0), 1u);  // exact region: values exact
  EXPECT_EQ(h.Percentile(0.5), 2u);
  EXPECT_EQ(h.Percentile(1.0), 3u);

  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0u);
}

TEST(HistogramTest, MergeAddsCounts) {
  LogHistogram a, b, all;
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.Next() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    all.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), all.Count());
  EXPECT_DOUBLE_EQ(a.Mean(), all.Mean());
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(a.Percentile(q), all.Percentile(q)) << "q=" << q;
  }
}

// Acceptance check: percentiles computed from a histogram recorded
// *concurrently* agree with percentiles of the raw sample set within
// one log bucket of relative error (<= 2^-kPrecisionBits).
TEST(HistogramTest, ConcurrentRecordingMatchesRawPercentiles) {
  constexpr int kThreads = 4;
  constexpr size_t kPerThread = 50000;
  LogHistogram h;

  // Deterministic per-thread streams; the union is the reference sample.
  std::vector<std::vector<uint64_t>> streams(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    streams[t].reserve(kPerThread);
    for (size_t i = 0; i < kPerThread; ++i) {
      // Heavy-tailed: mostly small latencies, occasional large spikes —
      // the shape the histogram exists for.
      const uint64_t v = (rng.Next() % 5000) + 1;
      streams[t].push_back(rng.Next() % 100 == 0 ? v * 1000 : v);
    }
  }

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, &streams, t] {
      for (uint64_t v : streams[t]) h.Record(v);
    });
  }
  for (auto& th : threads) th.join();

  std::vector<uint64_t> raw;
  raw.reserve(kThreads * kPerThread);
  for (const auto& s : streams) raw.insert(raw.end(), s.begin(), s.end());
  std::sort(raw.begin(), raw.end());

  ASSERT_EQ(h.Count(), raw.size());
  constexpr double kBound = 1.0 / (1 << LogHistogram::kPrecisionBits);
  for (double q : {0.5, 0.9, 0.95, 0.99, 0.999}) {
    // Same rank rule as LogHistogram::Percentile.
    const uint64_t exact =
        raw[static_cast<size_t>(q * static_cast<double>(raw.size() - 1))];
    const uint64_t approx = h.Percentile(q);
    const double rel =
        std::abs(static_cast<double>(approx) - static_cast<double>(exact)) /
        static_cast<double>(exact);
    EXPECT_LE(rel, kBound) << "q=" << q << " exact=" << exact
                           << " approx=" << approx;
  }
  // Mean is exact (a plain sum), not quantized.
  double sum = 0.0;
  for (uint64_t v : raw) sum += static_cast<double>(v);
  EXPECT_DOUBLE_EQ(h.Mean(), sum / static_cast<double>(raw.size()));
}

// --- histogram -> cumulative OpenMetrics buckets (obs/export.h) -----------

TEST(HistogramBucketsTest, EmptyHistogramYieldsJustInf) {
  LogHistogram h;
  const auto buckets = obs::CumulativeBuckets(h);
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_TRUE(std::isinf(buckets[0].le));
  EXPECT_EQ(buckets[0].count, 0u);
}

TEST(HistogramBucketsTest, SingleBucketPlusInf) {
  LogHistogram h;
  h.Record(7);
  h.Record(7);
  const auto buckets = obs::CumulativeBuckets(h);
  ASSERT_EQ(buckets.size(), 2u);
  // Exact region: bucket 7's exclusive upper edge is 8.
  EXPECT_DOUBLE_EQ(buckets[0].le, 8.0);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_TRUE(std::isinf(buckets[1].le));
  EXPECT_EQ(buckets[1].count, 2u);
}

TEST(HistogramBucketsTest, OverflowBucketFoldsIntoInf) {
  // The maximal value lands in the last raw bucket, whose upper edge
  // would overflow BucketLow's shift; it must fold into +Inf instead of
  // emitting a bogus finite edge.
  ASSERT_EQ(LogHistogram::BucketIndex(~uint64_t{0}),
            LogHistogram::kBuckets - 1);
  LogHistogram h;
  h.Record(~uint64_t{0});
  h.Record(1);
  const auto buckets = obs::CumulativeBuckets(h);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].le, 2.0);
  EXPECT_EQ(buckets[0].count, 1u);
  EXPECT_TRUE(std::isinf(buckets[1].le));
  EXPECT_EQ(buckets[1].count, 2u);  // the folded sample is still counted

  // Cumulative counts are monotone non-decreasing in le order.
  for (size_t i = 1; i < buckets.size(); ++i) {
    EXPECT_GE(buckets[i].count, buckets[i - 1].count);
  }
}

// --- MetricsRegistry ------------------------------------------------------

TEST(MetricsTest, GetOrCreateReturnsStablePointers) {
  obs::MetricsRegistry reg;
  obs::Counter* c1 = reg.GetCounter("a.reads");
  obs::Counter* c2 = reg.GetCounter("a.reads");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(reg.GetCounter("a.writes"), c1);
  obs::Gauge* g = reg.GetGauge("a.ratio");
  EXPECT_EQ(reg.GetGauge("a.ratio"), g);
  obs::LogHistogram* h = reg.GetHistogram("a.lat");
  EXPECT_EQ(reg.GetHistogram("a.lat"), h);

  c1->Add(41);
  c1->Add();
  EXPECT_EQ(c2->Get(), 42u);
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(reg.GetGauge("a.ratio")->Get(), 1.5);
}

TEST(MetricsTest, ToJsonExportsEverything) {
  obs::MetricsRegistry reg;
  reg.GetCounter("z.count")->Add(7);
  reg.GetGauge("z.gauge")->Set(0.5);
  obs::LogHistogram* h = reg.GetHistogram("z.hist");
  h->Record(10);
  h->Record(20);

  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"z.count\":7}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"z.gauge\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"z.hist\":{\"count\":2,\"mean\":15"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p50\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\":20"), std::string::npos) << json;

  reg.Clear();
  EXPECT_EQ(reg.ToJson(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

TEST(MetricsTest, GlobalIsSingletonAndRegisterWiresAllMetrics) {
  EXPECT_EQ(&obs::MetricsRegistry::Global(), &obs::MetricsRegistry::Global());
  const obs::IndexMetrics m = obs::IndexMetrics::Register("obs_test.reg");
  ASSERT_NE(m.reads, nullptr);
  ASSERT_NE(m.writes, nullptr);
  ASSERT_NE(m.batches, nullptr);
  ASSERT_NE(m.batch_keys, nullptr);
  ASSERT_NE(m.batch_size, nullptr);
  ASSERT_NE(m.read_lock_ns, nullptr);
  ASSERT_NE(m.write_lock_ns, nullptr);
  ASSERT_NE(m.shard_imbalance, nullptr);
  // Same prefix resolves to the same objects.
  const obs::IndexMetrics m2 = obs::IndexMetrics::Register("obs_test.reg");
  EXPECT_EQ(m.reads, m2.reads);
  EXPECT_EQ(m.batch_size, m2.batch_size);
}

// --- PerfCounterGroup fallback --------------------------------------------

TEST(PerfCountersTest, DisableEnvForcesFallback) {
  setenv("SIMDTREE_DISABLE_PERF", "1", 1);
  EXPECT_FALSE(obs::PerfCounterGroup::Available());
  obs::PerfCounterGroup group;
  EXPECT_FALSE(group.ok());
  group.Start();  // must be a harmless no-op
  const obs::HwCounts hw = group.Stop();
  EXPECT_FALSE(hw.valid);
  EXPECT_DOUBLE_EQ(hw.cycles, 0.0);
  EXPECT_DOUBLE_EQ(hw.instructions, 0.0);
  EXPECT_DOUBLE_EQ(hw.ipc(), 0.0);
  unsetenv("SIMDTREE_DISABLE_PERF");
}

TEST(PerfCountersTest, MeasureWhenAvailable) {
  unsetenv("SIMDTREE_DISABLE_PERF");
  if (!obs::PerfCounterGroup::Available()) {
    GTEST_SKIP() << "perf_event_open denied on this host";
  }
  obs::PerfCounterGroup group;
  ASSERT_TRUE(group.ok());
  volatile uint64_t sink = 0;
  const obs::HwCounts hw = group.Measure([&] {
    for (uint64_t i = 0; i < 1000000; ++i) sink = sink + i;
  });
  EXPECT_TRUE(hw.valid);
  EXPECT_GT(hw.instructions, 1e6);  // at least one instruction per add
  EXPECT_GT(hw.cycles, 0.0);
  EXPECT_GE(hw.scale, 1.0);
  EXPECT_GT(hw.ipc(), 0.0);
}

// --- index wrapper hooks --------------------------------------------------

using SegTree64 = segtree::SegTree<uint64_t, uint64_t>;

TEST(IndexMetricsHookTest, SynchronizedIndexCountsOps) {
  SynchronizedIndex<SegTree64> index;
  index.EnableMetrics("obs_test.sync");
  const obs::IndexMetrics m = obs::IndexMetrics::Register("obs_test.sync");
  const uint64_t reads0 = m.reads->Get();
  const uint64_t writes0 = m.writes->Get();

  for (uint64_t k = 0; k < 100; ++k) index.Insert(k, k * 10);
  EXPECT_EQ(m.writes->Get() - writes0, 100u);

  for (uint64_t k = 0; k < 50; ++k) EXPECT_TRUE(index.Contains(k));
  EXPECT_EQ(index.Find(7), std::optional<uint64_t>(70));
  EXPECT_EQ(m.reads->Get() - reads0, 51u);
  // Reads on OLC-capable indexes are lock-free by default, so the
  // read-lock histogram records only fallback acquisitions — it may
  // legitimately stay empty here (core/olc.h).
  EXPECT_GT(m.write_lock_ns->Count(), 0u);

  const uint64_t batches0 = m.batches->Get();
  std::vector<uint64_t> keys = {1, 2, 3, 999};
  std::vector<std::optional<uint64_t>> out(keys.size());
  index.FindBatch(keys.data(), keys.size(), out.data());
  EXPECT_EQ(out[0], std::optional<uint64_t>(10));
  EXPECT_FALSE(out[3].has_value());
  EXPECT_EQ(m.batches->Get() - batches0, 1u);
  EXPECT_GE(m.batch_keys->Get(), keys.size());
  EXPECT_GT(m.batch_size->Count(), 0u);
}

TEST(IndexMetricsHookTest, ShardedIndexRecordsImbalance) {
  ShardedIndex<SegTree64> index(4);
  index.EnableMetrics("obs_test.shard");
  const obs::IndexMetrics m = obs::IndexMetrics::Register("obs_test.shard");

  for (uint64_t k = 0; k < 256; ++k) {
    index.Insert(k << 56, k);  // spread across the uniform splitters
  }
  std::vector<uint64_t> keys;
  for (uint64_t k = 0; k < 256; ++k) keys.push_back(k << 56);
  std::vector<std::optional<uint64_t>> out(keys.size());
  const uint64_t batches0 = m.batches->Get();
  index.FindBatch(keys.data(), keys.size(), out.data());
  for (uint64_t k = 0; k < 256; ++k) {
    ASSERT_TRUE(out[k].has_value());
    EXPECT_EQ(*out[k], k);
  }
  EXPECT_EQ(m.batches->Get() - batches0, 1u);
  // Keys spread evenly over 4 shards: imbalance gauge near 1.0, and
  // never below it by construction (max share >= even share).
  EXPECT_GE(m.shard_imbalance->Get(), 1.0);
  EXPECT_LT(m.shard_imbalance->Get(), 1.5);

  // A batch aimed at one shard maxes the gauge at num_shards.
  std::vector<uint64_t> skew(64, uint64_t{3});
  std::vector<std::optional<uint64_t>> out2(skew.size());
  index.FindBatch(skew.data(), skew.size(), out2.data());
  EXPECT_DOUBLE_EQ(m.shard_imbalance->Get(), 4.0);
}

// --- exemplars ------------------------------------------------------------

TEST(ExemplarStoreTest, OfferLandsInTheValueBucket) {
  obs::ExemplarStore store;
  store.Offer(12345, 0xabcdef);
  obs::ExemplarStore::Exemplar ex;
  ASSERT_TRUE(store.Read(LogHistogram::BucketIndex(12345), &ex));
  EXPECT_EQ(ex.value, 12345u);
  EXPECT_EQ(ex.trace_id, 0xabcdefu);
  // Other buckets stay empty.
  EXPECT_FALSE(store.Read(LogHistogram::BucketIndex(12345) + 1, &ex));
}

TEST(ExemplarStoreTest, LastWriterWinsPerBucket) {
  obs::ExemplarStore store;
  // Two values in the same raw bucket (deep geometric region).
  const uint64_t a = 1 << 20;
  const size_t bucket = LogHistogram::BucketIndex(a);
  uint64_t b = a + 1;
  while (LogHistogram::BucketIndex(b) != bucket) ++b;
  store.Offer(a, 1);
  store.Offer(b, 2);
  obs::ExemplarStore::Exemplar ex;
  ASSERT_TRUE(store.Read(bucket, &ex));
  EXPECT_EQ(ex.value, b);
  EXPECT_EQ(ex.trace_id, 2u);
}

TEST(ExemplarStoreTest, ConcurrentOffersNeverTearValueIdPairs) {
  obs::ExemplarStore store;
  // Writers hammer one bucket with matched (value, id) pairs; any torn
  // read would pair one writer's value with another's id. Reads that
  // race an in-flight write may legitimately fail (the seqlock rejects
  // them) — the invariant is that a SUCCESSFUL read is never torn.
  const uint64_t base = 1 << 20;
  const size_t bucket = LogHistogram::BucketIndex(base);
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&store, base, t] {
      for (int i = 0; i < 100000; ++i) {
        // id encodes the value, so a reader can verify the pairing.
        store.Offer(base + static_cast<uint64_t>(t),
                    base + static_cast<uint64_t>(t));
      }
    });
  }
  obs::ExemplarStore::Exemplar ex;
  for (int i = 0; i < 200000; ++i) {
    if (store.Read(bucket, &ex)) {
      ASSERT_EQ(ex.value, ex.trace_id) << "torn exemplar";
    }
  }
  for (auto& th : writers) th.join();
  // Quiescent store: the read must now succeed, untorn.
  ASSERT_TRUE(store.Read(bucket, &ex));
  EXPECT_EQ(ex.value, ex.trace_id);
  EXPECT_GE(ex.value, base);
  EXPECT_LT(ex.value, base + 3);
}

// --- OpenMetrics exposition under concurrency -----------------------------

TEST(OpenMetricsExportTest, BuildInfoAndUptimeArePublished) {
  obs::PublishBuildInfo();
  const std::string om =
      obs::RenderOpenMetrics(obs::MetricsRegistry::Global().Snap());
  EXPECT_NE(om.find("simdtree_build_info{"), std::string::npos) << om;
  EXPECT_NE(om.find("git_sha=\""), std::string::npos);
  EXPECT_NE(om.find("backend=\""), std::string::npos);
  EXPECT_NE(om.find("simd_register_bits=\""), std::string::npos);
  EXPECT_NE(om.find("hugepages=\""), std::string::npos);
  EXPECT_NE(om.find("process_uptime_seconds"), std::string::npos);
}

TEST(OpenMetricsExportTest, ExemplarRendersOnTheMatchingBucketLine) {
  auto& reg = obs::MetricsRegistry::Global();
  LogHistogram* h = reg.GetHistogram("obs_test.ex_ns");
  obs::ExemplarStore* ex = reg.GetExemplars("obs_test.ex_ns");
  h->Record(500);
  h->Record(70000);
  ex->Offer(70000, 0x1122334455667788ULL);

  const std::string om = obs::RenderOpenMetrics(reg.Snap());
  const size_t pos = om.find("trace_id=\"1122334455667788\"");
  ASSERT_NE(pos, std::string::npos) << om;
  const size_t line_start = om.rfind('\n', pos) + 1;
  const std::string line =
      om.substr(line_start, om.find('\n', pos) - line_start);
  // On a bucket line of the right family, value appended after the pair.
  EXPECT_EQ(line.rfind("obs_test_ex_ns_bucket{le=\"", 0), 0u) << line;
  EXPECT_NE(line.find("} 70000"), std::string::npos) << line;
  // The 500 sample's bucket has no exemplar: exactly one rendered.
  EXPECT_EQ(om.find("trace_id=\"", pos + 1), std::string::npos);
}

TEST(OpenMetricsExportTest, ScrapeWhileRecordingStaysWellFormed) {
  auto& reg = obs::MetricsRegistry::Global();
  LogHistogram* h = reg.GetHistogram("obs_test.scrape_ns");
  obs::ExemplarStore* ex = reg.GetExemplars("obs_test.scrape_ns");
  obs::Counter* c = reg.GetCounter("obs_test.scrape_total");

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(42 + static_cast<uint64_t>(t));
      while (!stop.load(std::memory_order_relaxed)) {
        const uint64_t v = (rng.Next() % 100000) + 1;
        h->Record(v);
        ex->Offer(v, rng.Next() | 1);
        c->Add();
      }
    });
  }

  // Concurrent scrapes: every rendered exposition must be structurally
  // sound — buckets cumulative per family, terminated by # EOF, and
  // every exemplar value within its bucket's le (the lint contract
  // scripts/lint_openmetrics.py enforces in CI).
  for (int scrape = 0; scrape < 20; ++scrape) {
    const std::string om = obs::RenderOpenMetrics(reg.Snap());
    ASSERT_GE(om.size(), 6u);
    EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");

    double prev_le = -1.0;
    uint64_t prev_count = 0;
    std::string prev_family;
    size_t start = 0;
    while (start < om.size()) {
      const size_t end = om.find('\n', start);
      const std::string line = om.substr(start, end - start);
      start = end + 1;
      const size_t bpos = line.find("_bucket{le=\"");
      if (bpos == std::string::npos) continue;
      const std::string family = line.substr(0, bpos);
      if (family != prev_family) {
        prev_family = family;
        prev_le = -1.0;
        prev_count = 0;
      }
      const char* le_str = line.c_str() + bpos + 12;
      const double le = line.compare(bpos + 12, 4, "+Inf") == 0
                            ? std::numeric_limits<double>::infinity()
                            : std::strtod(le_str, nullptr);
      const size_t vpos = line.find("\"} ");
      ASSERT_NE(vpos, std::string::npos) << line;
      const uint64_t count = std::strtoull(line.c_str() + vpos + 3,
                                           nullptr, 10);
      ASSERT_GT(le, prev_le) << line;
      ASSERT_GE(count, prev_count) << line;
      prev_le = le;
      prev_count = count;
      const size_t epos = line.find("# {trace_id=");
      if (epos != std::string::npos) {
        const double ex_value =
            std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
        ASSERT_LE(ex_value, le) << line;
      }
    }
  }
  stop.store(true);
  for (auto& th : writers) th.join();
}

}  // namespace
}  // namespace simdtree
