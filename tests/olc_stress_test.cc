// Multi-threaded differential stress for the lock-free read path
// (optimistic lock coupling + epoch reclamation, core/olc.h): readers
// run genuinely concurrent with writers — no lock between a reader's
// descent and a writer's split — so this suite is the one that must
// pass under ThreadSanitizer (the CI tsan job builds it) and it soaks
// 10x under SIMDTREE_STRESS=1 (ctest label `stress`).
//
// Scheme mirrors concurrent_stress_test: writer threads own disjoint
// congruence classes of the key space, so the quiescent state is
// interleaving-independent and a mutex-guarded std::map oracle
// converges to the exact expected contents. Values are a pure function
// of the key (self-certifying), so readers can validate every pair they
// observe mid-flight without knowing the interleaving:
//   * Find/FindBatch: a hit must carry ValueOf(key); sentinel keys that
//     are never erased must always hit.
//   * ScanRange racing splits: delivered keys must be ascending and
//     in-window, every pair self-certifying, and all sentinels inside
//     the window must appear exactly once.
// At each quiescent point the full index is diffed against the oracle.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "btree/btree.h"
#include "core/sharded.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using Tree = btree::BPlusTree<uint64_t, uint64_t>;

// 10x everything when SIMDTREE_STRESS is set (the ctest `stress` label).
int StressScale() {
  const char* env = std::getenv("SIMDTREE_STRESS");
  return (env != nullptr && env[0] != '\0' && env[0] != '0') ? 10 : 1;
}

uint64_t ValueOf(uint64_t key) {
  return (key ^ 0xC0FFEE0DDBA11ULL) * 0x9E3779B97F4A7C15ULL;
}

constexpr int kWriters = 2;
constexpr int kReaders = 2;
constexpr uint64_t kKeySpace = 1 << 16;

// Mutex-guarded oracle, updated alongside every index mutation. Each
// writer owns key % kWriters == id, so oracle updates commute across
// writers and the quiescent diff is exact. The tree is a multimap but
// writers here never insert a live duplicate (they erase first), so the
// oracle stays a map.
struct Oracle {
  std::mutex mu;
  std::map<uint64_t, uint64_t> map;
};

template <typename IndexLike>
void WriterLoop(IndexLike& index, Oracle& oracle, int id, int ops,
                uint64_t seed) {
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    uint64_t key = rng.NextBounded(kKeySpace);
    key -= key % kWriters;
    key += static_cast<uint64_t>(id);
    const bool insert = rng.NextBounded(100) < 60;
    if (insert) {
      const bool was_live = index.Erase(key);  // no live duplicates
      index.Insert(key, ValueOf(key));
      std::lock_guard<std::mutex> lock(oracle.mu);
      if (!was_live) oracle.map.emplace(key, ValueOf(key));
      else oracle.map[key] = ValueOf(key);
    } else {
      const bool erased = index.Erase(key);
      std::lock_guard<std::mutex> lock(oracle.mu);
      if (erased) oracle.map.erase(key);
    }
  }
}

// Sentinels: keys the writers never touch (key % kWriters has no owner
// gap, so carve them out of the top of the key space instead). They are
// inserted before the threads start and must be visible to every read
// forever.
std::vector<uint64_t> MakeSentinels() {
  std::vector<uint64_t> s;
  for (uint64_t k = kKeySpace; k < kKeySpace + 64; ++k) s.push_back(k);
  return s;
}

template <typename IndexLike>
void ReaderLoop(const IndexLike& index, const std::vector<uint64_t>& sentinels,
                std::atomic<bool>& stop, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> batch(48);
  std::vector<std::optional<uint64_t>> out(batch.size());
  while (!stop.load(std::memory_order_relaxed)) {
    // Single-key reads: hits must self-certify, sentinels must hit.
    for (int i = 0; i < 32; ++i) {
      const uint64_t k = rng.NextBounded(kKeySpace);
      const auto v = index.Find(k);
      if (v.has_value()) {
        ASSERT_EQ(*v, ValueOf(k)) << "torn value for key " << k;
      }
    }
    const uint64_t sentinel =
        sentinels[rng.NextBounded(sentinels.size())];
    const auto sv = index.Find(sentinel);
    ASSERT_TRUE(sv.has_value()) << "sentinel " << sentinel << " vanished";
    ASSERT_EQ(*sv, ValueOf(sentinel));

    // Batched reads through the optimistic engines.
    for (auto& b : batch) b = rng.NextBounded(kKeySpace + 64);
    batch[0] = sentinels[rng.NextBounded(sentinels.size())];
    index.FindBatch(batch.data(), batch.size(), out.data());
    for (size_t j = 0; j < batch.size(); ++j) {
      if (out[j].has_value()) {
        ASSERT_EQ(*out[j], ValueOf(batch[j]))
            << "torn batch value for key " << batch[j];
      }
    }
    ASSERT_TRUE(out[0].has_value()) << "sentinel miss in batch";

    // Range scan racing splits: ascending, in-window, self-certifying,
    // and every sentinel in the window delivered exactly once.
    const uint64_t lo = rng.NextBounded(kKeySpace);
    const uint64_t hi = lo + 1 + rng.NextBounded(4096) + 64;
    uint64_t prev = 0;
    bool first = true;
    size_t sentinel_hits = 0;
    index.ScanRange(lo, hi, [&](uint64_t k, const uint64_t& v) {
      ASSERT_GE(k, lo);
      ASSERT_LT(k, hi);
      if (!first) {
        ASSERT_GE(k, prev) << "scan went backwards";
      }
      first = false;
      prev = k;
      ASSERT_EQ(v, ValueOf(k)) << "torn scan value for key " << k;
      if (k >= kKeySpace) ++sentinel_hits;
    });
    size_t expected_sentinels = 0;
    for (uint64_t s : sentinels) {
      if (s >= lo && s < hi) ++expected_sentinels;
    }
    ASSERT_EQ(sentinel_hits, expected_sentinels)
        << "scan [" << lo << "," << hi << ") missed or duplicated a "
        << "stable sentinel";
  }
}

template <typename IndexLike>
void QuiescentDiff(const IndexLike& index, Oracle& oracle,
                   const std::vector<uint64_t>& sentinels) {
  std::map<uint64_t, uint64_t> expected;
  {
    std::lock_guard<std::mutex> lock(oracle.mu);
    expected = oracle.map;
  }
  for (uint64_t s : sentinels) expected.emplace(s, ValueOf(s));
  ASSERT_EQ(index.size(), expected.size());
  // Full stitched scan == oracle.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  index.ScanRange(0, kKeySpace + 64,
                  [&](uint64_t k, const uint64_t& v) {
                    scanned.emplace_back(k, v);
                  });
  ASSERT_EQ(scanned.size(), expected.size());
  size_t i = 0;
  for (const auto& [k, v] : expected) {
    ASSERT_EQ(scanned[i].first, k);
    ASSERT_EQ(scanned[i].second, v);
    ++i;
  }
  // Per-key Find over every live key plus guaranteed misses.
  for (const auto& [k, v] : expected) {
    const auto got = index.Find(k);
    ASSERT_TRUE(got.has_value()) << "live key " << k << " missing";
    ASSERT_EQ(*got, v);
  }
  for (uint64_t k = kKeySpace + 64; k < kKeySpace + 96; ++k) {
    ASSERT_FALSE(index.Find(k).has_value());
  }
}

template <typename IndexLike>
void RunDifferential(IndexLike& index, int rounds, int ops_per_round) {
  Oracle oracle;
  const std::vector<uint64_t> sentinels = MakeSentinels();
  for (uint64_t s : sentinels) {
    index.Insert(s, ValueOf(s));
  }
  for (int round = 0; round < rounds; ++round) {
    std::atomic<bool> stop{false};
    std::vector<std::thread> pool;
    for (int w = 0; w < kWriters; ++w) {
      pool.emplace_back([&, w] {
        WriterLoop(index, oracle, w, ops_per_round,
                   0xABCD + static_cast<uint64_t>(round) * 131 +
                       static_cast<uint64_t>(w));
      });
    }
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        ReaderLoop(index, sentinels, stop,
                   0x1234 + static_cast<uint64_t>(round) * 977 +
                       static_cast<uint64_t>(r));
      });
    }
    for (auto& th : pool) th.join();
    stop.store(true, std::memory_order_relaxed);
    for (auto& th : readers) th.join();
    QuiescentDiff(index, oracle, sentinels);
  }
}

TEST(OlcStress, ShardedDifferential) {
  const int scale = StressScale();
  std::vector<uint64_t> sample;
  for (uint64_t k = 0; k < kKeySpace + 64; k += 97) sample.push_back(k);
  ShardedIndex<Tree> index(
      4, ShardedIndex<Tree>::SplittersFromSample(sample.data(),
                                                 sample.size(), 4));
  RunDifferential(index, /*rounds=*/2 * scale, /*ops_per_round=*/4000);
}

TEST(OlcStress, SynchronizedDifferential) {
  const int scale = StressScale();
  SynchronizedIndex<Tree> index;
  RunDifferential(index, /*rounds=*/2 * scale, /*ops_per_round=*/4000);
}

// Reclamation churn: writers bulk-erase and re-insert whole key blocks
// (forcing merges, frees, quarantine traffic, and slab-level reuse)
// while readers stay in flight. Any use-after-reclaim surfaces as a
// torn (non-self-certifying) value, a fault, or a TSan report.
TEST(OlcStress, EpochReclamationChurn) {
  const int scale = StressScale();
  SynchronizedIndex<Tree> index;
  const std::vector<uint64_t> sentinels = MakeSentinels();
  for (uint64_t s : sentinels) index.Insert(s, ValueOf(s));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      ReaderLoop(index, sentinels, stop, 0x7777 + static_cast<uint64_t>(r));
    });
  }
  const int churns = 20 * scale;
  for (int c = 0; c < churns; ++c) {
    const uint64_t base = (static_cast<uint64_t>(c) % 8) * 4096;
    for (uint64_t k = base; k < base + 4096; ++k) {
      index.Insert(k, ValueOf(k));
    }
    for (uint64_t k = base; k < base + 4096; ++k) {
      index.Erase(k);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();

  for (uint64_t s : sentinels) {
    const auto v = index.Find(s);
    ASSERT_TRUE(v.has_value());
    ASSERT_EQ(*v, ValueOf(s));
  }
  ASSERT_EQ(index.size(), sentinels.size());
}

}  // namespace
}  // namespace simdtree
