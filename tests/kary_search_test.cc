// k-ary SIMD search must return std::upper_bound positions for every key
// type, layout, storage policy, bitmask-evaluation algorithm, backend, and
// a wide range of sizes — including duplicates, type extremes, and probes
// outside the stored key range.

#include "kary/kary_search.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "kary/linearize.h"
#include "util/rng.h"

namespace simdtree::kary {
namespace {

template <typename T>
struct Fixture {
  std::vector<T> sorted;
  std::vector<T> lin;
  KaryShape shape;
  int64_t stored = 0;

  Fixture(std::vector<T> keys, Layout layout, Storage storage)
      : sorted(std::move(keys)),
        shape(KaryShape::For(simd::LaneTraits<T>::kArity,
                             sorted.empty() ? 1 : sorted.size())) {
    const KaryLayout kl(shape, layout);
    stored = kl.StoredSlots(static_cast<int64_t>(sorted.size()), storage);
    lin.resize(static_cast<size_t>(stored));
    kl.Linearize(sorted.data(), static_cast<int64_t>(sorted.size()),
                 lin.data(), stored, PadValue<T>());
  }

  int64_t ReferenceUpperBound(T v) const {
    return std::upper_bound(sorted.begin(), sorted.end(), v) -
           sorted.begin();
  }
};

template <typename T, typename Eval, simd::Backend B>
void CheckAllConfigs(const std::vector<T>& keys,
                     const std::vector<T>& probes) {
  // Breadth-first: perfect and truncated storage.
  for (Storage storage : {Storage::kPerfect, Storage::kTruncated}) {
    Fixture<T> f(keys, Layout::kBreadthFirst, storage);
    for (T v : probes) {
      const int64_t got = UpperBoundBf<T, Eval, B>(
          f.lin.data(), f.stored, static_cast<int64_t>(keys.size()), v);
      ASSERT_EQ(got, f.ReferenceUpperBound(v))
          << "bf storage=" << (storage == Storage::kPerfect ? "perfect"
                                                            : "truncated")
          << " n=" << keys.size() << " v=" << static_cast<int64_t>(v);
    }
  }
  // Depth-first: perfect storage only.
  Fixture<T> f(keys, Layout::kDepthFirst, Storage::kPerfect);
  for (T v : probes) {
    const int64_t got = UpperBoundDf<T, Eval, B>(
        f.lin.data(), f.stored, static_cast<int64_t>(keys.size()), v);
    ASSERT_EQ(got, f.ReferenceUpperBound(v))
        << "df n=" << keys.size() << " v=" << static_cast<int64_t>(v);
  }
}

template <typename T>
std::vector<T> MakeProbes(const std::vector<T>& keys, Rng& rng) {
  std::vector<T> probes = {std::numeric_limits<T>::min(),
                           std::numeric_limits<T>::max(), T{0}};
  for (T k : keys) {
    probes.push_back(k);
    if (k != std::numeric_limits<T>::min())
      probes.push_back(static_cast<T>(k - 1));
    if (k != std::numeric_limits<T>::max())
      probes.push_back(static_cast<T>(k + 1));
  }
  for (int i = 0; i < 64; ++i) probes.push_back(static_cast<T>(rng.Next()));
  return probes;
}

template <typename T>
class KarySearchTypedTest : public testing::Test {};

using KeyTypes = testing::Types<int8_t, uint8_t, int16_t, uint16_t, int32_t,
                                uint32_t, int64_t, uint64_t>;
TYPED_TEST_SUITE(KarySearchTypedTest, KeyTypes);

TYPED_TEST(KarySearchTypedTest, MatchesStdUpperBoundAcrossSizes) {
  using T = TypeParam;
  Rng rng(2024);
  for (int64_t n :
       {int64_t{0}, int64_t{1}, int64_t{2}, int64_t{3}, int64_t{7},
        int64_t{15}, int64_t{16}, int64_t{17}, int64_t{31}, int64_t{64},
        int64_t{100}, int64_t{127}, int64_t{200}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());
    const auto probes = MakeProbes<T>(keys, rng);
    CheckAllConfigs<T, simd::PopcountEval, simd::kDefaultBackend>(keys,
                                                                  probes);
  }
}

TYPED_TEST(KarySearchTypedTest, MatchesStdUpperBoundWithDuplicates) {
  using T = TypeParam;
  Rng rng(7);
  for (int64_t n : {int64_t{10}, int64_t{50}, int64_t{150}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    // Few distinct values -> heavy duplication.
    for (auto& k : keys) k = static_cast<T>(rng.NextBounded(5) * 3);
    std::sort(keys.begin(), keys.end());
    const auto probes = MakeProbes<T>(keys, rng);
    CheckAllConfigs<T, simd::PopcountEval, simd::kDefaultBackend>(keys,
                                                                  probes);
  }
}

TYPED_TEST(KarySearchTypedTest, HandlesTypeExtremesAsKeys) {
  using T = TypeParam;
  // Keys include the type maximum, which collides with the padding value;
  // the clamp to n must keep results exact.
  std::vector<T> keys = {std::numeric_limits<T>::min(), T{0},
                         std::numeric_limits<T>::max(),
                         std::numeric_limits<T>::max()};
  std::sort(keys.begin(), keys.end());
  Rng rng(3);
  const auto probes = MakeProbes<T>(keys, rng);
  CheckAllConfigs<T, simd::PopcountEval, simd::kDefaultBackend>(keys, probes);
}

TYPED_TEST(KarySearchTypedTest, AllKeysEqualTypeMax) {
  using T = TypeParam;
  std::vector<T> keys(40, std::numeric_limits<T>::max());
  Rng rng(4);
  const auto probes = MakeProbes<T>(keys, rng);
  CheckAllConfigs<T, simd::PopcountEval, simd::kDefaultBackend>(keys, probes);
}

// Every (eval policy x backend) combination on a representative workload.
template <typename T>
void SweepEvalAndBackend() {
  Rng rng(555);
  std::vector<T> keys(97);
  for (auto& k : keys) k = static_cast<T>(rng.Next());
  std::sort(keys.begin(), keys.end());
  const auto probes = MakeProbes<T>(keys, rng);
  CheckAllConfigs<T, simd::BitShiftEval, simd::Backend::kScalar>(keys,
                                                                 probes);
  CheckAllConfigs<T, simd::SwitchCaseEval, simd::Backend::kScalar>(keys,
                                                                   probes);
  CheckAllConfigs<T, simd::PopcountEval, simd::Backend::kScalar>(keys,
                                                                 probes);
#if defined(__SSE2__) && defined(__SSE4_2__)
  CheckAllConfigs<T, simd::BitShiftEval, simd::Backend::kSse>(keys, probes);
  CheckAllConfigs<T, simd::SwitchCaseEval, simd::Backend::kSse>(keys, probes);
  CheckAllConfigs<T, simd::PopcountEval, simd::Backend::kSse>(keys, probes);
#endif
}

TYPED_TEST(KarySearchTypedTest, AllEvalPoliciesAndBackendsAgree) {
  SweepEvalAndBackend<TypeParam>();
}

TYPED_TEST(KarySearchTypedTest, EqualityExtensionMatchesOnDistinctKeys) {
  using T = TypeParam;
  Rng rng(11);
  for (int64_t n : {int64_t{1}, int64_t{20}, int64_t{85}, int64_t{200}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    Fixture<T> f(keys, Layout::kBreadthFirst, Storage::kTruncated);
    const auto probes = MakeProbes<T>(keys, rng);
    for (T v : probes) {
      const int64_t got = UpperBoundBfWithEquality<T>(
          f.lin.data(), f.shape, f.stored,
          static_cast<int64_t>(keys.size()), v);
      ASSERT_EQ(got, f.ReferenceUpperBound(v))
          << "n=" << keys.size() << " v=" << static_cast<int64_t>(v);
    }
  }
}

TEST(KarySearchTest, PaperFigure5Example) {
  // Figure 5: breadth-first linearized 26 keys (0..25), probe v = 9 lands
  // at logical position 10 == upper_bound: key 9 exists at position 9.
  std::vector<int64_t> keys(26);
  for (int i = 0; i < 26; ++i) keys[static_cast<size_t>(i)] = i;
  Fixture<int64_t> f(keys, Layout::kBreadthFirst, Storage::kPerfect);
  EXPECT_EQ((UpperBoundBf<int64_t>(f.lin.data(), f.stored, 26, 9)), 10);
  // The paper's narration returns pLevel = 9 = "first key greater than the
  // search key" under its 1-based reading; as an upper bound over 0-based
  // positions the first key greater than 9 is key 10 at position 10.
  EXPECT_EQ((UpperBoundBf<int64_t>(f.lin.data(), f.stored, 26, 8)), 9);
}

TEST(KarySearchTest, LowerBoundHelper) {
  std::vector<int32_t> keys = {2, 4, 4, 4, 9, 11};
  Fixture<int32_t> f(keys, Layout::kBreadthFirst, Storage::kTruncated);
  auto ub = [&](int32_t v) {
    return UpperBoundBf<int32_t>(f.lin.data(), f.stored,
                                 static_cast<int64_t>(keys.size()), v);
  };
  EXPECT_EQ(LowerBoundFromUpperBound<int32_t>(4, ub), 1);
  EXPECT_EQ(LowerBoundFromUpperBound<int32_t>(5, ub), 4);
  EXPECT_EQ(LowerBoundFromUpperBound<int32_t>(
                std::numeric_limits<int32_t>::min(), ub),
            0);
  EXPECT_EQ(LowerBoundFromUpperBound<int32_t>(12, ub), 6);
}

}  // namespace
}  // namespace simdtree::kary
