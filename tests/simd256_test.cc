// Tests for the 256-bit register-width extension (the paper's future-work
// direction): AVX2 backend vs the scalar 256-bit backend, bitmask
// evaluation at 32-bit masks, k-ary search correctness at k = 33/17/9/5,
// and full structures instantiated at 256-bit width.

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "kary/kary_array.h"
#include "kary/kary_search.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "simd/bitmask_eval.h"
#include "simd/simd256.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using simd::Backend;
using simd::LaneTraits;

TEST(Simd256Test, LaneCountsDoubleThe128BitOnes) {
  EXPECT_EQ((LaneTraits<int8_t, 256>::kArity), 33);
  EXPECT_EQ((LaneTraits<int16_t, 256>::kArity), 17);
  EXPECT_EQ((LaneTraits<int32_t, 256>::kArity), 9);
  EXPECT_EQ((LaneTraits<int64_t, 256>::kArity), 5);
}

template <typename T>
uint32_t SwitchPointMask256(int p) {
  constexpr int lanes = LaneTraits<T, 256>::kLanes;
  constexpr int stride = LaneTraits<T, 256>::kBytesPerLane;
  uint64_t mask = 0;
  for (int i = p; i < lanes; ++i) {
    mask |= ((uint64_t{1} << stride) - 1) << (i * stride);
  }
  return static_cast<uint32_t>(mask);
}

template <typename T>
void ExpectEvalsDecode256() {
  for (int p = 0; p <= LaneTraits<T, 256>::kLanes; ++p) {
    const uint32_t mask = SwitchPointMask256<T>(p);
    EXPECT_EQ((simd::BitShiftEval::Position<T, 256>(mask)), p);
    EXPECT_EQ((simd::SwitchCaseEval::Position<T, 256>(mask)), p);
    EXPECT_EQ((simd::PopcountEval::Position<T, 256>(mask)), p);
  }
}

TEST(Simd256Test, BitmaskEvalsDecodeAllPositions) {
  ExpectEvalsDecode256<int8_t>();
  ExpectEvalsDecode256<uint8_t>();
  ExpectEvalsDecode256<int16_t>();
  ExpectEvalsDecode256<int32_t>();
  ExpectEvalsDecode256<uint32_t>();
  ExpectEvalsDecode256<int64_t>();
  ExpectEvalsDecode256<uint64_t>();
}

#if defined(__AVX2__)
template <typename T>
void ExpectAvx2MatchesScalar() {
  constexpr int lanes = LaneTraits<T, 256>::kLanes;
  using Sse = simd::Ops<T, Backend::kSse, 256>;
  using Sca = simd::Ops<T, Backend::kScalar, 256>;
  Rng rng(5);
  std::array<T, static_cast<size_t>(lanes)> keys;
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    const T probe = static_cast<T>(rng.Next());
    const uint32_t sse_gt = Sse::MoveMask(
        Sse::CmpGt(Sse::LoadUnaligned(keys.data()), Sse::Set1(probe)));
    const uint32_t sca_gt = Sca::MoveMask(
        Sca::CmpGt(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe)));
    ASSERT_EQ(sse_gt, sca_gt);
    const uint32_t sse_eq = Sse::MoveMask(
        Sse::CmpEq(Sse::LoadUnaligned(keys.data()), Sse::Set1(probe)));
    const uint32_t sca_eq = Sca::MoveMask(
        Sca::CmpEq(Sca::LoadUnaligned(keys.data()), Sca::Set1(probe)));
    ASSERT_EQ(sse_eq, sca_eq);
  }
}

TEST(Simd256Test, Avx2MatchesScalarAllTypes) {
  ExpectAvx2MatchesScalar<int8_t>();
  ExpectAvx2MatchesScalar<uint8_t>();
  ExpectAvx2MatchesScalar<int16_t>();
  ExpectAvx2MatchesScalar<uint16_t>();
  ExpectAvx2MatchesScalar<int32_t>();
  ExpectAvx2MatchesScalar<uint32_t>();
  ExpectAvx2MatchesScalar<int64_t>();
  ExpectAvx2MatchesScalar<uint64_t>();
}
#endif  // __AVX2__

template <typename T, Backend B>
void CheckKarySearch256() {
  Rng rng(17);
  for (int64_t n : {int64_t{0}, int64_t{1}, int64_t{31}, int64_t{32},
                    int64_t{33}, int64_t{100}, int64_t{1000}}) {
    std::vector<T> keys(static_cast<size_t>(n));
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    std::sort(keys.begin(), keys.end());

    constexpr int arity = LaneTraits<T, 256>::kArity;
    const kary::KaryShape shape = kary::KaryShape::For(arity, n == 0 ? 1 : n);
    for (kary::Layout layout :
         {kary::Layout::kBreadthFirst, kary::Layout::kDepthFirst}) {
      const kary::Storage storage = layout == kary::Layout::kDepthFirst
                                        ? kary::Storage::kPerfect
                                        : kary::Storage::kTruncated;
      const kary::KaryLayout kl(shape, layout);
      const int64_t stored = kl.StoredSlots(n, storage);
      std::vector<T> lin(static_cast<size_t>(stored));
      kl.Linearize(keys.data(), n, lin.data(), stored, kary::PadValue<T>());

      std::vector<T> probes = keys;
      for (int i = 0; i < 100; ++i) probes.push_back(static_cast<T>(rng.Next()));
      probes.push_back(std::numeric_limits<T>::min());
      probes.push_back(std::numeric_limits<T>::max());
      for (T v : probes) {
        const int64_t expected =
            std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
        const int64_t got =
            layout == kary::Layout::kBreadthFirst
                ? kary::UpperBoundBf<T, simd::PopcountEval, B, 256>(
                      lin.data(), stored, n, v)
                : kary::UpperBoundDf<T, simd::PopcountEval, B, 256>(
                      lin.data(), stored, n, v);
        ASSERT_EQ(got, expected)
            << "n=" << n << " layout=" << kary::LayoutName(layout)
            << " v=" << static_cast<int64_t>(v);
      }
    }
  }
}

TEST(Simd256Test, KarySearchMatchesStdUpperBoundScalarBackend) {
  CheckKarySearch256<int8_t, Backend::kScalar>();
  CheckKarySearch256<uint16_t, Backend::kScalar>();
  CheckKarySearch256<int32_t, Backend::kScalar>();
  CheckKarySearch256<uint64_t, Backend::kScalar>();
}

#if defined(__AVX2__)
TEST(Simd256Test, KarySearchMatchesStdUpperBoundAvx2Backend) {
  CheckKarySearch256<int8_t, Backend::kSse>();
  CheckKarySearch256<uint16_t, Backend::kSse>();
  CheckKarySearch256<int32_t, Backend::kSse>();
  CheckKarySearch256<int64_t, Backend::kSse>();
}

TEST(Simd256Test, SegTreeAt256BitWidthModelTest) {
  segtree::SegTree<int64_t, int64_t, kary::Layout::kBreadthFirst,
                   simd::PopcountEval, Backend::kSse, 256>
      tree(64);
  std::multimap<int64_t, int64_t> model;
  Rng rng(23);
  for (int op = 0; op < 4000; ++op) {
    const int64_t k = static_cast<int64_t>(rng.NextBounded(500));
    if (rng.NextBounded(100) < 60) {
      tree.Insert(k, op);
      model.emplace(k, op);
    } else {
      auto it = model.find(k);
      const bool em = it != model.end();
      if (em) model.erase(it);
      ASSERT_EQ(tree.Erase(k), em);
    }
  }
  ASSERT_TRUE(tree.Validate());
  ASSERT_EQ(tree.size(), model.size());
  for (int64_t k = 0; k < 500; ++k) {
    ASSERT_EQ(tree.Count(k), model.count(k));
  }
}

TEST(Simd256Test, SegTrieAt256BitWidth) {
  segtrie::SegTrie<uint64_t, int64_t, 8, simd::PopcountEval, Backend::kSse,
                   256>
      trie;
  std::map<uint64_t, int64_t> model;
  Rng rng(29);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t k = rng.Next() & 0xFFFFF;
    if (rng.NextBounded(100) < 70) {
      trie.Insert(k, i);
      model[k] = i;
    } else {
      ASSERT_EQ(trie.Erase(k), model.erase(k) > 0);
    }
  }
  ASSERT_TRUE(trie.Validate());
  ASSERT_EQ(trie.size(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(trie.Find(k).value(), v);
}

TEST(Simd256Test, KaryArrayAt256BitWidth) {
  Rng rng(31);
  std::vector<uint32_t> keys(3000);
  for (auto& k : keys) k = static_cast<uint32_t>(rng.Next());
  std::sort(keys.begin(), keys.end());
  kary::KaryArray<uint32_t, 256> arr(keys, kary::Layout::kBreadthFirst);
  EXPECT_EQ(decltype(arr)::kArity, 9);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    const int64_t expected =
        std::upper_bound(keys.begin(), keys.end(), v) - keys.begin();
    ASSERT_EQ(arr.UpperBound(v), expected);
  }
}
#endif  // __AVX2__

}  // namespace
}  // namespace simdtree
