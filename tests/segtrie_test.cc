// Seg-Trie tests: model-based behaviour against std::map, the in-node fast
// paths, segment widths 4/8/16, lazy expansion (the optimized variant),
// level accounting, and the memory-reduction property.

#include "segtrie/segtrie.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "gtest/gtest.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree::segtrie {
namespace {

using Trie64 = SegTrie<uint64_t, int64_t>;
using OptTrie64 = OptimizedSegTrie<uint64_t, int64_t>;

TEST(SegTrieTest, EmptyTrie) {
  Trie64 t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Contains(0));
  EXPECT_FALSE(t.Erase(0));
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(Trie64::max_levels(), 8);
  EXPECT_EQ(t.active_levels(), 8);  // plain trie always has r levels
}

TEST(SegTrieTest, SingleKeyLifecycle) {
  Trie64 t;
  EXPECT_TRUE(t.Insert(0xDEADBEEFCAFE1234ULL, 7));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(0xDEADBEEFCAFE1234ULL).value(), 7);
  EXPECT_FALSE(t.Contains(0xDEADBEEFCAFE1235ULL));
  // Overwrite, not duplicate.
  EXPECT_FALSE(t.Insert(0xDEADBEEFCAFE1234ULL, 9));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Find(0xDEADBEEFCAFE1234ULL).value(), 9);
  EXPECT_TRUE(t.Erase(0xDEADBEEFCAFE1234ULL));
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.Validate());
}

TEST(SegTrieTest, TraversalTerminatesAboveLeafOnMissingSegment) {
  // Keys sharing no upper segment with the probe: the search must miss
  // without touching lower levels (we can only observe the result here,
  // but the probe exercises the early-termination path).
  Trie64 t;
  t.Insert(0x0101010101010101ULL, 1);
  EXPECT_FALSE(t.Contains(0x0201010101010101ULL));  // differs at level 0
  EXPECT_FALSE(t.Contains(0x0101010101010102ULL));  // differs at leaf
}

template <typename TrieT>
void RunTrieModel(TrieT& t, uint64_t seed, int ops, uint64_t key_mask) {
  std::map<uint64_t, int64_t> model;
  Rng rng(seed);
  for (int op = 0; op < ops; ++op) {
    const uint64_t k = rng.Next() & key_mask;
    if (rng.NextBounded(100) < 65) {
      const bool fresh_tree = t.Insert(k, op);
      const bool fresh_model = model.emplace(k, op).second;
      if (!fresh_model) model[k] = op;
      ASSERT_EQ(fresh_tree, fresh_model) << "op " << op;
    } else {
      ASSERT_EQ(t.Erase(k), model.erase(k) > 0) << "op " << op;
    }
    if (op % 256 == 0) ASSERT_TRUE(t.Validate()) << "op " << op;
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (const auto& [k, v] : model) {
    ASSERT_EQ(t.Find(k).value(), v);
  }
  // In-order traversal matches the model exactly.
  std::vector<std::pair<uint64_t, int64_t>> seen;
  t.ForEach([&](uint64_t k, const int64_t& v) { seen.emplace_back(k, v); });
  ASSERT_EQ(seen.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : seen) {
    ASSERT_EQ(k, it->first);
    ASSERT_EQ(v, it->second);
    ++it;
  }
}

TEST(SegTrieTest, RandomModelDenseLowBytes) {
  Trie64 t;
  RunTrieModel(t, 1, 6000, 0x3FF);  // keys in [0, 1024)
}

TEST(SegTrieTest, RandomModelSparseFullWidth) {
  Trie64 t;
  RunTrieModel(t, 2, 4000, ~0ULL);
}

TEST(SegTrieTest, RandomModelMiddleBytes) {
  Trie64 t;
  RunTrieModel(t, 3, 4000, 0x00FFFF0000ULL);
}

TEST(OptimizedSegTrieTest, RandomModelDense) {
  OptTrie64 t;
  RunTrieModel(t, 4, 6000, 0xFFF);
}

TEST(OptimizedSegTrieTest, RandomModelSparse) {
  OptTrie64 t;
  RunTrieModel(t, 5, 4000, ~0ULL);
}

TEST(SegTrieTest, SegmentWidth4Bits) {
  SegTrie<uint32_t, int32_t, 4> t;
  EXPECT_EQ(t.max_levels(), 8);
  std::map<uint32_t, int32_t> model;
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t k = static_cast<uint32_t>(rng.NextBounded(5000));
    t.Insert(k, i);
    model[k] = i;
  }
  ASSERT_TRUE(t.Validate());
  ASSERT_EQ(t.size(), model.size());
  for (const auto& [k, v] : model) ASSERT_EQ(t.Find(k).value(), v);
}

TEST(SegTrieTest, SegmentWidth16Bits) {
  SegTrie<uint32_t, int32_t, 16> t;
  EXPECT_EQ(t.max_levels(), 2);
  std::map<uint32_t, int32_t> model;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const uint32_t k = static_cast<uint32_t>(rng.Next());
    t.Insert(k, i);
    model[k] = i;
  }
  ASSERT_TRUE(t.Validate());
  for (const auto& [k, v] : model) ASSERT_EQ(t.Find(k).value(), v);
}

TEST(SegTrieTest, SixteenBitKeys) {
  SegTrie<uint16_t, int32_t> t;
  EXPECT_EQ(t.max_levels(), 2);
  for (uint32_t k = 0; k < 65536; k += 3) {
    t.Insert(static_cast<uint16_t>(k), static_cast<int32_t>(k));
  }
  ASSERT_TRUE(t.Validate());
  for (uint32_t k = 0; k < 65536; ++k) {
    ASSERT_EQ(t.Contains(static_cast<uint16_t>(k)), k % 3 == 0) << k;
  }
}

TEST(SegTrieTest, FullNodeFastPathDirectIndex) {
  // Fill one leaf node completely (all 256 partial keys): lookups use the
  // hash-like direct index.
  Trie64 t;
  for (uint64_t k = 0; k < 256; ++k) t.Insert(k, static_cast<int64_t>(k * 2));
  ASSERT_TRUE(t.Validate());
  for (uint64_t k = 0; k < 256; ++k) {
    ASSERT_EQ(t.Find(k).value(), static_cast<int64_t>(k * 2));
  }
  // Now remove one and check the non-full path takes over seamlessly.
  ASSERT_TRUE(t.Erase(100));
  EXPECT_FALSE(t.Contains(100));
  EXPECT_TRUE(t.Contains(99));
  EXPECT_TRUE(t.Contains(101));
}

TEST(OptimizedSegTrieTest, LazyExpansionGrowsWithPrefixDivergence) {
  OptTrie64 t;
  t.Insert(5, 1);
  EXPECT_EQ(t.active_levels(), 1);  // consecutive small keys: one level
  t.Insert(250, 2);
  EXPECT_EQ(t.active_levels(), 1);
  t.Insert(256, 3);  // needs a second level
  EXPECT_EQ(t.active_levels(), 2);
  t.Insert(1ULL << 16, 4);  // third level
  EXPECT_EQ(t.active_levels(), 3);
  t.Insert(1ULL << 63, 5);  // full depth
  EXPECT_EQ(t.active_levels(), 8);
  ASSERT_TRUE(t.Validate());
  EXPECT_EQ(t.Find(5).value(), 1);
  EXPECT_EQ(t.Find(250).value(), 2);
  EXPECT_EQ(t.Find(256).value(), 3);
  EXPECT_EQ(t.Find(1ULL << 16).value(), 4);
  EXPECT_EQ(t.Find(1ULL << 63).value(), 5);
  EXPECT_EQ(t.size(), 5u);
}

TEST(OptimizedSegTrieTest, SharedNonZeroPrefix) {
  // All keys share a non-zero upper prefix; the omitted levels must carry
  // that prefix, and probes outside it must miss fast.
  OptTrie64 t;
  const uint64_t prefix = 0xABCD000000000000ULL;
  for (uint64_t i = 0; i < 500; ++i) t.Insert(prefix | i, static_cast<int64_t>(i));
  EXPECT_EQ(t.active_levels(), 2);  // 500 needs two low bytes
  ASSERT_TRUE(t.Validate());
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_EQ(t.Find(prefix | i).value(), static_cast<int64_t>(i));
  }
  EXPECT_FALSE(t.Contains(0xABCE000000000000ULL | 5));
  EXPECT_FALSE(t.Contains(5));
}

TEST(OptimizedSegTrieTest, MatchesPlainTrieOnSameData) {
  Trie64 plain;
  OptTrie64 opt;
  Rng rng(8);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = rng.Next() & 0xFFFFFF;  // three active levels
    keys.push_back(k);
    plain.Insert(k, i);
    opt.Insert(k, i);
  }
  ASSERT_EQ(plain.size(), opt.size());
  EXPECT_LE(opt.active_levels(), 3);
  EXPECT_EQ(plain.active_levels(), 8);
  for (uint64_t k : keys) {
    ASSERT_EQ(plain.Find(k).value(), opt.Find(k).value());
  }
  // The optimized trie stores fewer nodes and less memory.
  EXPECT_LT(opt.Stats().nodes, plain.Stats().nodes);
  EXPECT_LT(opt.MemoryBytes(), plain.MemoryBytes());
}

TEST(OptimizedSegTrieTest, ConsecutiveKeysUseFewNodes) {
  // Paper Section 4: "the strength of a Seg-Trie arises from storing
  // consecutive keys like tuple ids".
  OptTrie64 t;
  constexpr uint64_t kN = 65536;
  for (uint64_t k = 0; k < kN; ++k) t.Insert(k, static_cast<int64_t>(k));
  ASSERT_TRUE(t.Validate());
  const TrieStats s = t.Stats();
  EXPECT_EQ(s.keys, kN);
  EXPECT_EQ(s.levels, 2);
  // 256 leaf nodes + 1 branching node.
  EXPECT_EQ(s.nodes, 257u);
}

TEST(SegTrieTest, WorstCaseSparseDistributionStillCorrect) {
  // Paper Section 4's worst storage case: keys evenly spread over the
  // domain leave lower nodes nearly empty.
  Trie64 t;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 2000; ++i) {
    keys.push_back(i * 0x87654321FEDCBA9ULL);  // spread across the domain
    t.Insert(keys.back(), static_cast<int64_t>(i));
  }
  ASSERT_TRUE(t.Validate());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(t.Find(keys[i]).value(), static_cast<int64_t>(i));
  }
}

TEST(SegTrieTest, EraseRemovesEmptyNodes) {
  Trie64 t;
  t.Insert(0x0102030405060708ULL, 1);
  t.Insert(0x0102030405060709ULL, 2);
  EXPECT_EQ(t.Stats().nodes, 8u);  // shared path, one extra leaf entry
  ASSERT_TRUE(t.Erase(0x0102030405060708ULL));
  EXPECT_EQ(t.Stats().nodes, 8u);  // leaf still holds the sibling
  ASSERT_TRUE(t.Erase(0x0102030405060709ULL));
  EXPECT_TRUE(t.empty());
  ASSERT_TRUE(t.Validate());
  // Re-insert after full drain works.
  EXPECT_TRUE(t.Insert(42, 42));
  EXPECT_EQ(t.Find(42).value(), 42);
}

TEST(SegTrieTest, MixedRadixWorkloadFillsExpectedLevels) {
  for (int depth = 1; depth <= 4; ++depth) {
    OptTrie64 t;
    const auto keys = MixedRadixKeys(depth, 6);
    for (size_t i = 0; i < keys.size(); ++i) {
      t.Insert(keys[i], static_cast<int64_t>(i));
    }
    ASSERT_TRUE(t.Validate());
    EXPECT_EQ(t.active_levels(), depth) << "depth " << depth;
    for (size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(t.Find(keys[i]).value(), static_cast<int64_t>(i));
    }
  }
}

TEST(SegTrieTest, ScalarBackendMatchesSse) {
  SegTrie<uint64_t, int64_t, 8, simd::PopcountEval, simd::Backend::kScalar>
      scalar_trie;
  RunTrieModel(scalar_trie, 11, 3000, 0xFFFFF);
}

}  // namespace
}  // namespace simdtree::segtrie
