// Serialization round-trip tests for every structure, plus hostile-input
// validation of the blob parser.

#include "core/serialize.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "btree/btree.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"
#include "util/workload.h"

namespace simdtree {
namespace {

TEST(SerializeTest, BPlusTreeRoundTrip) {
  btree::BPlusTree<int64_t, int64_t> tree(32);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    tree.Insert(static_cast<int64_t>(rng.NextBounded(100000)), i);
  }
  const auto blob = io::Serialize<int64_t, int64_t>(tree, 32);
  auto loaded =
      io::LoadTree<btree::BPlusTree<int64_t, int64_t>>(blob.data(),
                                                       blob.size());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->Validate());
  ASSERT_EQ(loaded->size(), tree.size());
  // Identical content, including duplicate multiplicities.
  auto a = tree.begin();
  auto b = loaded->begin();
  while (a.valid() && b.valid()) {
    ASSERT_EQ(a.key(), b.key());
    ASSERT_EQ(a.value(), b.value());
    ++a;
    ++b;
  }
  EXPECT_FALSE(a.valid());
  EXPECT_FALSE(b.valid());
}

TEST(SerializeTest, SegTreeRoundTrip) {
  segtree::SegTree<uint32_t, uint64_t> tree(64);
  for (uint32_t i = 0; i < 10000; ++i) tree.Insert(i * 3, i);
  const auto blob = io::Serialize<uint32_t, uint64_t>(tree, 64);
  auto loaded = io::LoadTree<segtree::SegTree<uint32_t, uint64_t>>(
      blob.data(), blob.size());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->Validate());
  for (uint32_t i = 0; i < 10000; i += 7) {
    ASSERT_EQ(loaded->Find(i * 3).value(), i);
    ASSERT_FALSE(loaded->Contains(i * 3 + 1));
  }
}

TEST(SerializeTest, SegTrieRoundTrip) {
  using Trie = segtrie::SegTrie<uint64_t, uint64_t>;
  Trie trie;
  Rng rng(2);
  const auto keys = UniformDistinctKeys<uint64_t>(8000, rng);
  for (size_t i = 0; i < keys.size(); ++i) {
    trie.Insert(keys[i], static_cast<uint64_t>(i));
  }
  const auto blob = io::Serialize<uint64_t, uint64_t>(trie);
  auto loaded = io::LoadTrie<Trie>(blob.data(), blob.size());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_TRUE(loaded->Validate());
  ASSERT_EQ(loaded->size(), trie.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_EQ(loaded->Find(keys[i]).value(), static_cast<uint64_t>(i));
  }
}

TEST(SerializeTest, OptimizedTrieRoundTripKeepsLazyDepth) {
  using Trie = segtrie::SegTrie<uint64_t, uint64_t>;
  segtrie::OptimizedSegTrie<uint64_t, uint64_t> trie;
  for (uint64_t k = 0; k < 70000; ++k) trie.Insert(k, k);
  const auto blob = io::Serialize<uint64_t, uint64_t>(trie);
  auto loaded = io::LoadTrie<Trie>(
      blob.data(), blob.size(), Trie::Options{.lazy_expansion = true});
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->active_levels(), 3);
  EXPECT_EQ(loaded->size(), 70000u);
  EXPECT_TRUE(loaded->Contains(69999));
}

TEST(SerializeTest, EmptyIndexRoundTrip) {
  btree::BPlusTree<int32_t, int32_t> tree(8);
  const auto blob = io::Serialize<int32_t, int32_t>(tree, 8);
  EXPECT_EQ(blob.size(), io::kHeaderBytes);
  auto loaded = io::LoadTree<btree::BPlusTree<int32_t, int32_t>>(
      blob.data(), blob.size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
  EXPECT_TRUE(loaded->Validate());
}

TEST(SerializeTest, FileRoundTrip) {
  segtree::SegTree<int16_t, int32_t> tree(40);
  for (int i = -500; i < 500; ++i) {
    tree.Insert(static_cast<int16_t>(i), i * 2);
  }
  const auto blob = io::Serialize<int16_t, int32_t>(tree, 40);
  const std::string path = testing::TempDir() + "/simdtree_blob.stix";
  ASSERT_TRUE(io::WriteBlobToFile(blob, path));
  const auto read = io::ReadBlobFromFile(path);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(*read, blob);
  auto loaded = io::LoadTree<segtree::SegTree<int16_t, int32_t>>(
      read->data(), read->size());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->Find(-500).value(), -1000);
  EXPECT_EQ(loaded->Find(499).value(), 998);
  std::remove(path.c_str());
}

TEST(SerializeTest, RejectsMalformedBlobs) {
  using Tree = btree::BPlusTree<int64_t, int64_t>;
  Tree tree(8);
  tree.Insert(1, 1);
  tree.Insert(2, 2);
  auto blob = io::Serialize<int64_t, int64_t>(tree, 8);

  // Truncated buffer.
  EXPECT_FALSE(
      io::LoadTree<Tree>(blob.data(), blob.size() - 1).has_value());
  EXPECT_FALSE(io::LoadTree<Tree>(blob.data(), 3).has_value());
  EXPECT_FALSE(io::LoadTree<Tree>(nullptr, 0).has_value());

  // Wrong magic.
  {
    auto bad = blob;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(io::LoadTree<Tree>(bad.data(), bad.size()).has_value());
  }
  // Wrong version.
  {
    auto bad = blob;
    bad[4] = 99;
    EXPECT_FALSE(io::LoadTree<Tree>(bad.data(), bad.size()).has_value());
  }
  // Wrong key width (int32 reader on an int64 blob).
  EXPECT_FALSE((io::LoadTree<btree::BPlusTree<int32_t, int64_t>>(
                    blob.data(), blob.size()))
                   .has_value());
  // Hostile count field (would overflow the payload computation).
  {
    auto bad = blob;
    const uint64_t huge = ~0ULL;
    std::memcpy(bad.data() + 16, &huge, sizeof(huge));
    EXPECT_FALSE(io::LoadTree<Tree>(bad.data(), bad.size()).has_value());
  }
  // Unsorted payload.
  {
    auto bad = blob;
    const int64_t k0 = 9, k1 = 1;
    std::memcpy(bad.data() + io::kHeaderBytes, &k0, sizeof(k0));
    std::memcpy(bad.data() + io::kHeaderBytes + 8, &k1, sizeof(k1));
    EXPECT_FALSE(io::LoadTree<Tree>(bad.data(), bad.size()).has_value());
  }
}

TEST(SerializeTest, TrieRejectsDuplicateKeys) {
  // A multimap tree with duplicates serializes fine, but a trie cannot
  // represent it; LoadTrie must reject rather than silently drop.
  btree::BPlusTree<uint64_t, uint64_t> tree(8);
  tree.Insert(5, 1);
  tree.Insert(5, 2);
  const auto blob = io::Serialize<uint64_t, uint64_t>(tree);
  auto loaded = io::LoadTrie<segtrie::SegTrie<uint64_t, uint64_t>>(
      blob.data(), blob.size());
  EXPECT_FALSE(loaded.has_value());
}

}  // namespace
}  // namespace simdtree
