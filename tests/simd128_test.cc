// Unit tests for the 128-bit SIMD comparison layer: the SSE backend is
// differentially tested against the scalar backend, and both against a
// direct lane-by-lane reference, across all supported key types.

#include "simd/simd128.h"

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "simd/cpu_features.h"
#include "util/rng.h"

namespace simdtree::simd {
namespace {

template <typename T>
class Simd128TypedTest : public testing::Test {};

using KeyTypes = testing::Types<int8_t, uint8_t, int16_t, uint16_t, int32_t,
                                uint32_t, int64_t, uint64_t>;
TYPED_TEST_SUITE(Simd128TypedTest, KeyTypes);

template <typename T>
std::vector<T> InterestingValues() {
  std::vector<T> v = {
      std::numeric_limits<T>::min(),
      static_cast<T>(std::numeric_limits<T>::min() + 1),
      T{0},
      T{1},
      static_cast<T>(-1),  // wraps to max for unsigned types
      static_cast<T>(std::numeric_limits<T>::max() - 1),
      std::numeric_limits<T>::max(),
      T{42},
  };
  return v;
}

// Reference greater-than mask in movemask_epi8 format.
template <typename T>
uint32_t ReferenceGtMask(const std::array<T, LaneTraits<T>::kLanes>& keys,
                         T probe) {
  uint32_t mask = 0;
  for (int i = 0; i < LaneTraits<T>::kLanes; ++i) {
    if (keys[static_cast<size_t>(i)] > probe) {
      mask |= ((1u << LaneTraits<T>::kBytesPerLane) - 1u)
              << (i * LaneTraits<T>::kBytesPerLane);
    }
  }
  return mask;
}

template <typename T, Backend B>
uint32_t ComputeGtMask(const std::array<T, LaneTraits<T>::kLanes>& keys,
                       T probe) {
  using O = Ops<T, B>;
  const auto reg = O::LoadUnaligned(keys.data());
  const auto probe_reg = O::Set1(probe);
  return O::MoveMask(O::CmpGt(reg, probe_reg));
}

template <typename T, Backend B>
uint32_t ComputeEqMask(const std::array<T, LaneTraits<T>::kLanes>& keys,
                       T probe) {
  using O = Ops<T, B>;
  const auto reg = O::LoadUnaligned(keys.data());
  const auto probe_reg = O::Set1(probe);
  return O::MoveMask(O::CmpEq(reg, probe_reg));
}

TYPED_TEST(Simd128TypedTest, LaneCountsMatchPaperTable2) {
  // Paper Table 2: 16/8/4/2 parallel comparisons for 8/16/32/64-bit keys,
  // i.e. k = 17/9/5/3.
  constexpr int lanes = LaneTraits<TypeParam>::kLanes;
  constexpr int arity = LaneTraits<TypeParam>::kArity;
  EXPECT_EQ(lanes, 16 / static_cast<int>(sizeof(TypeParam)));
  EXPECT_EQ(arity, lanes + 1);
}

TYPED_TEST(Simd128TypedTest, ScalarBackendMatchesReferenceOnEdgeValues) {
  using T = TypeParam;
  const auto values = InterestingValues<T>();
  std::array<T, LaneTraits<T>::kLanes> keys;
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    for (auto& k : keys) {
      k = values[rng.NextBounded(values.size())];
    }
    const T probe = values[rng.NextBounded(values.size())];
    EXPECT_EQ((ComputeGtMask<T, Backend::kScalar>(keys, probe)),
              ReferenceGtMask<T>(keys, probe));
  }
}

#if defined(__SSE2__) && defined(__SSE4_2__)
TYPED_TEST(Simd128TypedTest, SseMatchesScalarOnEdgeValues) {
  using T = TypeParam;
  const auto values = InterestingValues<T>();
  std::array<T, LaneTraits<T>::kLanes> keys;
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    for (auto& k : keys) {
      k = values[rng.NextBounded(values.size())];
    }
    const T probe = values[rng.NextBounded(values.size())];
    EXPECT_EQ((ComputeGtMask<T, Backend::kSse>(keys, probe)),
              (ComputeGtMask<T, Backend::kScalar>(keys, probe)))
        << "probe=" << static_cast<int64_t>(probe);
  }
}

TYPED_TEST(Simd128TypedTest, SseMatchesScalarOnRandomValues) {
  using T = TypeParam;
  std::array<T, LaneTraits<T>::kLanes> keys;
  Rng rng(99);
  for (int trial = 0; trial < 2000; ++trial) {
    for (auto& k : keys) k = static_cast<T>(rng.Next());
    const T probe = static_cast<T>(rng.Next());
    EXPECT_EQ((ComputeGtMask<T, Backend::kSse>(keys, probe)),
              (ComputeGtMask<T, Backend::kScalar>(keys, probe)));
    EXPECT_EQ((ComputeEqMask<T, Backend::kSse>(keys, probe)),
              (ComputeEqMask<T, Backend::kScalar>(keys, probe)));
  }
}

TYPED_TEST(Simd128TypedTest, UnsignedBiasOrdersFullDomain) {
  // The sign-bit realignment must preserve the unsigned order across the
  // signed/unsigned boundary (e.g. 0x7F vs 0x80 for 8-bit).
  using T = TypeParam;
  std::array<T, LaneTraits<T>::kLanes> keys;
  const T mid = static_cast<T>(std::numeric_limits<T>::max() / 2);
  for (int i = 0; i < LaneTraits<T>::kLanes; ++i) {
    keys[static_cast<size_t>(i)] = static_cast<T>(mid + static_cast<T>(i));
  }
  for (int d = -2; d <= 2; ++d) {
    const T probe = static_cast<T>(mid + static_cast<T>(d));
    EXPECT_EQ((ComputeGtMask<T, Backend::kSse>(keys, probe)),
              ReferenceGtMask<T>(keys, probe));
  }
}
#endif  // __SSE2__ && __SSE4_2__

TEST(CpuFeaturesTest, DetectsSomethingOnX86) {
#if defined(__x86_64__)
  const CpuFeatures f = DetectCpuFeatures();
  EXPECT_TRUE(f.sse2);  // hard floor for x86-64
  EXPECT_FALSE(CpuFeatureString().empty());
#else
  GTEST_SKIP() << "non-x86 build";
#endif
}

TEST(Simd128Test, EqMaskIsPerLaneNotPerByte) {
  // A 32-bit lane equal to the probe must set all four of its mask bits.
  using T = int32_t;
  std::array<T, 4> keys = {5, 9, 9, 1000};
  const uint32_t mask = ComputeEqMask<T, Backend::kScalar>(keys, 9);
  EXPECT_EQ(mask, 0x0FF0u);
}

}  // namespace
}  // namespace simdtree::simd
