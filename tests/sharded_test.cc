// ShardedIndex unit tests: partitioning (ShardOf, uniform and
// sample-quantile splitters), the full index surface against a std::map
// oracle, cross-shard ScanRange stitching, and the FindBatch edge cases
// the differential batch tests skip — empty batches, all-missing
// batches, batches larger than the 256-key chunk of the locked
// FindBatch paths, and duplicate keys straddling a shard splitter.

#include "core/sharded.h"

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "btree/btree.h"
#include "core/synchronized.h"
#include "gtest/gtest.h"
#include "segtree/segtree.h"
#include "segtrie/segtrie.h"
#include "util/rng.h"

namespace simdtree {
namespace {

using SegTree64 = segtree::SegTree<uint64_t, uint64_t>;
using BTree64 = btree::BPlusTree<uint64_t, uint64_t>;
using Trie64 = segtrie::SegTrie<uint64_t, uint64_t>;

TEST(ShardedTest, UniformSplittersPartitionTheDomain) {
  ShardedIndex<SegTree64> index(8);
  EXPECT_EQ(index.num_shards(), 8u);
  ASSERT_EQ(index.splitters().size(), 7u);
  // Uniform division of the 64-bit domain: splitter s = s * 2^61.
  for (size_t s = 0; s < 7; ++s) {
    EXPECT_EQ(index.splitters()[s], (s + 1) * (1ULL << 61));
  }
  EXPECT_EQ(index.ShardOf(0), 0u);
  EXPECT_EQ(index.ShardOf((1ULL << 61) - 1), 0u);
  // A key equal to a splitter belongs to the shard on its right.
  EXPECT_EQ(index.ShardOf(1ULL << 61), 1u);
  EXPECT_EQ(index.ShardOf(~0ULL), 7u);
}

TEST(ShardedTest, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedIndex<SegTree64>(1).num_shards(), 1u);
  EXPECT_EQ(ShardedIndex<SegTree64>(3).num_shards(), 4u);
  EXPECT_EQ(ShardedIndex<SegTree64>(5).num_shards(), 8u);
  EXPECT_EQ(ShardedIndex<SegTree64>(16).num_shards(), 16u);
}

TEST(ShardedTest, SplittersFromSampleQuantiles) {
  // Clustered sample: uniform splitters would leave 7 of 8 shards
  // empty; quantile splitters spread the load.
  std::vector<uint64_t> sample;
  for (uint64_t k = 0; k < 8000; ++k) sample.push_back(k);
  const auto splitters =
      ShardedIndex<SegTree64>::SplittersFromSample(sample.data(),
                                                   sample.size(), 8);
  ASSERT_EQ(splitters.size(), 7u);
  for (size_t s = 0; s < 7; ++s) EXPECT_EQ(splitters[s], (s + 1) * 1000);

  ShardedIndex<SegTree64> index(8, splitters);
  for (uint64_t k = 0; k < 8000; ++k) index.Insert(k, k * 2);
  size_t nonempty = 0;
  index.ForEachShardRead([&](size_t, const SegTree64& tree) {
    if (tree.size() > 0) ++nonempty;
    EXPECT_EQ(tree.size(), 1000u);
  });
  EXPECT_EQ(nonempty, 8u);
  EXPECT_TRUE(index.Validate());
}

template <typename Index>
void CheckFullSurface() {
  ShardedIndex<Index> index(8);
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(7);
  // Mix of keys spanning all shards, including exact splitter keys.
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = i % 16 == 0
                           ? index.splitters()[rng.NextBounded(7)]
                           : rng.Next();
    const uint64_t v = static_cast<uint64_t>(i);
    index.Insert(k, v);
    oracle[k] = v;  // Index may be a multimap; values stay per-key
                    // deterministic below, so Find matches either way.
  }
  // Overwrite-free check needs deterministic values: rebuild both with
  // value = key ^ kSalt.
  constexpr uint64_t kSalt = 0x5AFE5AFE5AFE5AFEULL;
  index.Clear();
  EXPECT_EQ(index.size(), 0u);
  oracle.clear();
  Rng rng2(7);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = i % 16 == 0
                           ? index.splitters()[rng2.NextBounded(7)]
                           : rng2.Next();
    index.Insert(k, k ^ kSalt);
    oracle[k] = k ^ kSalt;
  }
  EXPECT_TRUE(index.Validate());

  // Point lookups, hits and misses.
  for (const auto& [k, v] : oracle) {
    ASSERT_TRUE(index.Contains(k));
    ASSERT_EQ(index.Find(k).value(), v);
  }
  Rng rng3(8);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t k = rng3.Next();
    ASSERT_EQ(index.Find(k).has_value(), oracle.count(k) == 1);
  }

  // Erase half, re-check.
  size_t erased = 0;
  for (auto it = oracle.begin(); it != oracle.end();) {
    if (erased % 2 == 0) {
      EXPECT_TRUE(index.Erase(it->first));
      it = oracle.erase(it);
    } else {
      ++it;
    }
    ++erased;
  }
  EXPECT_FALSE(index.Erase(~0ULL - 12345));  // never inserted
  for (const auto& [k, v] : oracle) ASSERT_EQ(index.Find(k).value(), v);
}

TEST(ShardedTest, FullSurfaceSegTree) { CheckFullSurface<SegTree64>(); }
TEST(ShardedTest, FullSurfaceBPlusTree) { CheckFullSurface<BTree64>(); }
TEST(ShardedTest, FullSurfaceSegTrie) { CheckFullSurface<Trie64>(); }

TEST(ShardedTest, ScanRangeStitchesAcrossShardBoundaries) {
  ShardedIndex<SegTree64> index(8);
  std::map<uint64_t, uint64_t> oracle;
  Rng rng(11);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t k = rng.Next();
    index.Insert(k, k + 1);
    oracle[k] = k + 1;
  }
  // Include every splitter key so boundaries carry data.
  for (uint64_t s : index.splitters()) {
    index.Insert(s, s + 1);
    oracle[s] = s + 1;
  }
  EXPECT_EQ(index.size(), oracle.size());

  // Windows that span 0, 1, and many splitters, plus the full domain.
  const uint64_t q = 1ULL << 61;
  struct Window { uint64_t lo, hi; bool inclusive; };
  const Window windows[] = {
      {0, q / 2, false},                 // inside shard 0
      {q - 1000, q + 1000, false},       // spans splitter 1
      {q / 2, 7 * q + 17, false},        // spans six splitters
      {0, ~0ULL, true},                  // full domain, inclusive
      {3 * q, 3 * q, true},              // single splitter key
      {5, 5, false},                     // empty half-open window
  };
  for (const Window& w : windows) {
    std::vector<std::pair<uint64_t, uint64_t>> got;
    index.ScanRange(w.lo, w.hi,
                    [&got](uint64_t k, const uint64_t& v) {
                      got.emplace_back(k, v);
                    },
                    w.inclusive);
    std::vector<std::pair<uint64_t, uint64_t>> want;
    for (auto it = oracle.lower_bound(w.lo); it != oracle.end(); ++it) {
      if (w.inclusive ? it->first > w.hi : it->first >= w.hi) break;
      want.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(got, want) << "window [" << w.lo << ", " << w.hi << ")"
                         << (w.inclusive ? " inclusive" : "");
  }
}

// --- FindBatch edge cases (sharded and synchronized) ----------------------

TEST(ShardedTest, FindBatchEmptyBatch) {
  ShardedIndex<SegTree64> index(4);
  index.Insert(1, 10);
  // n == 0 must be a no-op that never touches out (pass nullptr so any
  // dereference faults).
  index.FindBatch(nullptr, 0, nullptr);
  SUCCEED();
}

TEST(ShardedTest, FindBatchAllMissing) {
  ShardedIndex<SegTree64> index(8);
  for (uint64_t k = 0; k < 1000; ++k) index.Insert(k * 2, k);  // evens only
  std::vector<uint64_t> probes;
  for (uint64_t k = 0; k < 1000; ++k) probes.push_back(k * 2 + 1);
  // Spread misses across all shards too.
  for (uint64_t s : index.splitters()) probes.push_back(s + 1);
  std::vector<std::optional<uint64_t>> out(probes.size(),
                                           std::optional<uint64_t>(77));
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_FALSE(out[i].has_value()) << "i=" << i;  // 77 must be cleared
  }
}

TEST(ShardedTest, FindBatchLargerThanLockChunk) {
  // Batches well past the 256-key chunk that the locked FindBatch paths
  // (SynchronizedIndex::FindBatch, ShardedIndex per-shard loop) process
  // per iteration: 1000 keys landing in one shard plus a 5000-key
  // all-shard batch.
  ShardedIndex<SegTree64> index(8);
  Rng rng(13);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Next();
    keys.push_back(k);
    index.Insert(k, k ^ 0xF00DULL);
  }
  // One-shard batch: all probes below splitter 0.
  std::vector<uint64_t> one_shard;
  for (uint64_t k : keys) {
    if (k < index.splitters()[0]) one_shard.push_back(k);
    if (one_shard.size() == 1000) break;
  }
  ASSERT_GT(one_shard.size(), 400u);  // uniform keys: ~1/8 of 20000
  std::vector<std::optional<uint64_t>> out1(one_shard.size());
  index.FindBatch(one_shard.data(), one_shard.size(), out1.data());
  for (size_t i = 0; i < one_shard.size(); ++i) {
    ASSERT_TRUE(out1[i].has_value());
    ASSERT_EQ(*out1[i], one_shard[i] ^ 0xF00DULL);
  }
  // All-shard batch: hits interleaved with misses, 5000 keys.
  std::vector<uint64_t> probes;
  for (int i = 0; i < 5000; ++i) {
    probes.push_back(i % 2 == 0 ? keys[static_cast<size_t>(i) % keys.size()]
                                : rng.Next());
  }
  std::vector<std::optional<uint64_t>> out(probes.size());
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    const auto want = index.Find(probes[i]);
    ASSERT_EQ(out[i].has_value(), want.has_value()) << "i=" << i;
    if (want.has_value()) {
      ASSERT_EQ(*out[i], *want);
    }
  }
}

TEST(SynchronizedBatchEdgeTest, EmptyAllMissingAndPastChunk) {
  SynchronizedIndex<SegTree64> index;
  index.FindBatch(nullptr, 0, nullptr);  // n == 0: no-op
  for (uint64_t k = 0; k < 2000; ++k) index.Insert(k * 3, k);
  // All-missing batch.
  std::vector<uint64_t> missing;
  for (uint64_t k = 0; k < 500; ++k) missing.push_back(k * 3 + 1);
  std::vector<std::optional<uint64_t>> mout(missing.size(),
                                            std::optional<uint64_t>(9));
  index.FindBatch(missing.data(), missing.size(), mout.data());
  for (const auto& o : mout) ASSERT_FALSE(o.has_value());
  // 1000-key batch: four 256-key chunks, the last partial.
  std::vector<uint64_t> probes;
  for (uint64_t i = 0; i < 1000; ++i) probes.push_back(i * 3);
  std::vector<std::optional<uint64_t>> out(probes.size());
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_TRUE(out[i].has_value()) << "i=" << i;
    ASSERT_EQ(*out[i], i);
  }
}

TEST(ShardedTest, DuplicateKeysStraddlingASplitter) {
  // Multimap backend: duplicates of the splitter key itself all live in
  // the right-hand shard (ShardOf is deterministic), and FindBatch
  // resolves them like Find does.
  ShardedIndex<BTree64> index(4);
  const uint64_t split = index.splitters()[1];
  for (int i = 0; i < 100; ++i) {
    index.Insert(split, 42);        // 100 duplicates of the boundary key
    index.Insert(split - 1, 41);    // left neighbour, also duplicated
    index.Insert(split + 1, 43);    // right neighbour
  }
  EXPECT_EQ(index.size(), 300u);
  EXPECT_TRUE(index.Validate());
  // All occurrences of the boundary key are in exactly one shard.
  size_t shards_with_split = 0;
  index.ForEachShardRead([&](size_t, const BTree64& tree) {
    if (tree.Contains(split)) ++shards_with_split;
  });
  EXPECT_EQ(shards_with_split, 1u);
  // Batch with repeated boundary keys mixed with neighbours and misses.
  std::vector<uint64_t> probes;
  for (int i = 0; i < 300; ++i) {
    probes.push_back(split);
    probes.push_back(split - 1);
    probes.push_back(split + 1);
    probes.push_back(split + 2);  // miss
  }
  std::vector<std::optional<uint64_t>> out(probes.size());
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    switch (i % 4) {
      case 0: { ASSERT_EQ(out[i].value(), 42u); break; }
      case 1: { ASSERT_EQ(out[i].value(), 41u); break; }
      case 2: { ASSERT_EQ(out[i].value(), 43u); break; }
      default: { ASSERT_FALSE(out[i].has_value()); break; }
    }
  }
  // Erase the duplicates one by one across the boundary; counts drop as
  // scanned through the stitched ScanRange.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(index.Erase(split));
  EXPECT_FALSE(index.Erase(split));
  size_t remaining = 0;
  index.ScanRange(split - 1, split + 1,
                  [&remaining](uint64_t, const uint64_t&) { ++remaining; },
                  /*hi_inclusive=*/true);
  EXPECT_EQ(remaining, 200u);
}

TEST(ShardedTest, SingleShardDegeneratesToOneIndex) {
  ShardedIndex<SegTree64> index(1);
  EXPECT_EQ(index.num_shards(), 1u);
  EXPECT_TRUE(index.splitters().empty());
  Rng rng(3);
  std::map<uint64_t, uint64_t> oracle;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t k = rng.Next();
    index.Insert(k, k / 2);
    oracle[k] = k / 2;
  }
  EXPECT_EQ(index.size(), oracle.size());
  std::vector<uint64_t> probes;
  for (const auto& [k, v] : oracle) probes.push_back(k);
  std::vector<std::optional<uint64_t>> out(probes.size());
  index.FindBatch(probes.data(), probes.size(), out.data());
  for (size_t i = 0; i < probes.size(); ++i) {
    ASSERT_EQ(out[i].value(), probes[i] / 2);
  }
  EXPECT_TRUE(index.Validate());
}

}  // namespace
}  // namespace simdtree
