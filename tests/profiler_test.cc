// Continuous-profiler tests (obs/profiler.h): graceful degradation when
// perf_event_open sampling is denied, start/stop/idempotent-register
// lifecycle, and — when the host permits sampling — an end-to-end smoke
// that a busy loop produces folded on-CPU stacks.

#include "obs/profiler.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace simdtree::obs {
namespace {

TEST(ProfilerTest, DisableEnvForcesGracefulUnavailable) {
  setenv("SIMDTREE_DISABLE_PERF", "1", 1);
  ContinuousProfiler profiler;
  EXPECT_FALSE(profiler.Start(99));
  EXPECT_FALSE(profiler.running());
  EXPECT_FALSE(profiler.error().empty());
  EXPECT_FALSE(profiler.RegisterCurrentThread());
  // Collect never errors: the scrape surface stays green, explaining
  // itself in a comment line.
  const std::string out = profiler.Collect();
  EXPECT_EQ(out.rfind("# ", 0), 0u) << out;
  EXPECT_NE(out.find("SIMDTREE_DISABLE_PERF"), std::string::npos) << out;
  unsetenv("SIMDTREE_DISABLE_PERF");
}

TEST(ProfilerTest, RegisterWithoutStartIsANoOp) {
  unsetenv("SIMDTREE_DISABLE_PERF");
  ContinuousProfiler profiler;
  EXPECT_FALSE(profiler.RegisterCurrentThread());
  EXPECT_EQ(profiler.stats().threads, 0u);
  profiler.Stop();  // stop before start: harmless
}

TEST(ProfilerTest, SamplingSmokeProducesFoldedStacks) {
  unsetenv("SIMDTREE_DISABLE_PERF");
  if (!ContinuousProfiler::Available()) {
    GTEST_SKIP() << "perf_event_open sampling denied on this host";
  }
  ContinuousProfiler profiler;
  ASSERT_TRUE(profiler.Start(997)) << profiler.error();
  EXPECT_TRUE(profiler.running());
  EXPECT_EQ(profiler.freq_hz(), 997);
  ASSERT_TRUE(profiler.RegisterCurrentThread());
  // Second registration of the same thread in the same generation is
  // an idempotent no-op (the serving loop calls it every iteration).
  EXPECT_TRUE(profiler.RegisterCurrentThread());
  EXPECT_EQ(profiler.stats().threads, 1u);

  // Burn CPU long enough for the kernel to take samples at 997 Hz.
  volatile uint64_t sink = 0;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
  while (std::chrono::steady_clock::now() < until) {
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<uint64_t>(i);
  }

  const std::string out = profiler.Collect();
  const auto stats = profiler.stats();
  EXPECT_GT(stats.samples, 0u) << out;
  // Folded format: "# " header comments, then "frame;frame count" lines.
  EXPECT_EQ(out.rfind("# on-CPU profile:", 0), 0u) << out.substr(0, 200);
  const size_t body = out.find('\n') + 1;
  ASSERT_NE(out.find(' ', body), std::string::npos);
  // At least one stack line ends in a positive count.
  bool saw_stack = false;
  size_t start = body;
  while (start < out.size()) {
    const size_t end = out.find('\n', start);
    const std::string line =
        out.substr(start, end == std::string::npos ? end : end - start);
    start = end == std::string::npos ? out.size() : end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u)
        << line;
    saw_stack = true;
  }
  EXPECT_TRUE(saw_stack) << out;

  // Stop closes every ring; a fresh Start() bumps the generation so
  // threads re-register.
  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  EXPECT_EQ(profiler.stats().threads, 0u);
  ASSERT_TRUE(profiler.Start(499)) << profiler.error();
  EXPECT_TRUE(profiler.RegisterCurrentThread());
  EXPECT_EQ(profiler.stats().threads, 1u);
  profiler.Reset();
  EXPECT_EQ(profiler.stats().samples, 0u);
}

}  // namespace
}  // namespace simdtree::obs
